"""Experiment sweep orchestration.

The paper's tables and figures are cross-variant sweeps — Table 1 iterates
datasets, Fig. 4 iterates skew levels, Fig. 7 iterates device counts.  A
:class:`SweepSpec` names the sweep and enumerates its :class:`SweepVariant`
entries (a picklable runner + kwargs each); :func:`run_sweep` fans the
variants out through an :class:`~repro.federated.backend.ExecutionBackend`
— the same pluggable engine that parallelizes device training inside a
single run — and collects structured per-variant results, optionally
emitting one JSON file per variant plus a sweep manifest.

Every ``experiment_*`` function in :mod:`repro.experiments.runner` is built
on top of this module.
"""

from __future__ import annotations

import json
import re
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..federated.backend import ExecutionBackend, SerialBackend
from ..federated.history import TrainingHistory

__all__ = [
    "SweepVariant",
    "SweepSpec",
    "VariantResult",
    "SweepResult",
    "SweepError",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepVariant:
    """One point of a sweep: a runner callable plus its keyword arguments.

    ``runner`` and every value in ``kwargs`` must be picklable (module-level
    functions, dataclasses, plain containers) so the variant can execute in
    a backend worker process.  ``tags`` carries free-form labels (dataset,
    skew level, algorithm, ...) that flow into the structured results.
    """

    key: str
    runner: Callable[..., object]
    kwargs: Dict[str, object] = field(default_factory=dict)
    tags: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepSpec:
    """A named collection of sweep variants."""

    name: str
    variants: Sequence[SweepVariant]
    description: str = ""

    def __post_init__(self) -> None:
        keys = [variant.key for variant in self.variants]
        duplicates = {key for key in keys if keys.count(key) > 1}
        if duplicates:
            raise ValueError(f"duplicate variant keys in sweep {self.name!r}: {sorted(duplicates)}")


@dataclass
class VariantResult:
    """Outcome of one executed variant (value or captured error, plus timing)."""

    key: str
    value: object
    seconds: float
    error: Optional[str] = None
    traceback: Optional[str] = None
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepError(RuntimeError):
    """Raised by :func:`run_sweep` when variants failed and errors are fatal."""


def _execute_variant(variant: SweepVariant) -> VariantResult:
    """Run one variant, capturing its wall-clock time and any exception.

    Module-level so process-pool backends can pickle it by qualified name.
    """
    start = time.perf_counter()
    try:
        value = variant.runner(**variant.kwargs)
        error = tb = None
    except Exception as exc:  # noqa: BLE001 — variant failures are data, not crashes
        value = None
        error = f"{type(exc).__name__}: {exc}"
        tb = traceback.format_exc()
    return VariantResult(key=variant.key, value=value,
                         seconds=time.perf_counter() - start, error=error,
                         traceback=tb, tags=dict(variant.tags))


def _jsonable(value):
    """Best-effort conversion of a variant result to JSON-compatible data."""
    if isinstance(value, TrainingHistory):
        return value.to_dict()
    if hasattr(value, "to_dict"):
        return _jsonable(value.to_dict())
    if hasattr(value, "as_dict"):
        return _jsonable(value.as_dict())
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def _safe_filename(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key).strip("_") or "variant"


class SweepResult:
    """Ordered, keyed collection of :class:`VariantResult` objects."""

    def __init__(self, spec: SweepSpec, results: Sequence[VariantResult]) -> None:
        self.spec = spec
        self.results = list(results)
        self._by_key = {result.key: result for result in self.results}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, key: str) -> VariantResult:
        return self._by_key[key]

    def value(self, key: str):
        """The runner's return value for ``key`` (raises if the variant failed)."""
        result = self._by_key[key]
        if result.error is not None:
            raise SweepError(f"variant {key!r} of sweep {self.spec.name!r} failed: {result.error}"
                             + (f"\n{result.traceback}" if result.traceback else ""))
        return result.value

    def values(self) -> Dict[str, object]:
        return {result.key: result.value for result in self.results if result.ok}

    def failures(self) -> List[VariantResult]:
        return [result for result in self.results if not result.ok]

    @property
    def total_seconds(self) -> float:
        return float(sum(result.seconds for result in self.results))

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Structured summary of the sweep (JSON-compatible)."""
        return {
            "sweep": self.spec.name,
            "description": self.spec.description,
            "num_variants": len(self.results),
            "total_seconds": self.total_seconds,
            "variants": [
                {
                    "key": result.key,
                    "seconds": result.seconds,
                    "error": result.error,
                    "tags": _jsonable(result.tags),
                }
                for result in self.results
            ],
        }

    def save(self, output_dir: Union[str, Path]) -> Path:
        """Write one JSON file per variant plus a ``<sweep>.json`` manifest."""
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        for result in self.results:
            payload = {
                "sweep": self.spec.name,
                "key": result.key,
                "tags": _jsonable(result.tags),
                "seconds": result.seconds,
                "error": result.error,
                "traceback": result.traceback,
                "result": _jsonable(result.value),
            }
            path = output_dir / f"{_safe_filename(self.spec.name)}__{_safe_filename(result.key)}.json"
            with path.open("w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, default=float)
        manifest = output_dir / f"{_safe_filename(self.spec.name)}.json"
        with manifest.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=float)
        return manifest


def run_sweep(spec: SweepSpec, backend: Optional[ExecutionBackend] = None,
              output_dir: Optional[Union[str, Path]] = None,
              raise_on_error: bool = True, verbose: bool = False) -> SweepResult:
    """Execute every variant of ``spec`` through ``backend``.

    Parameters
    ----------
    spec:
        The sweep definition.
    backend:
        Execution backend; defaults to :class:`SerialBackend`.  A
        :class:`~repro.federated.backend.ProcessPoolBackend` fans variants
        out across worker processes (each variant then runs its *inner*
        simulation with a serial backend — no nested pools).
    output_dir:
        When given, per-variant JSON results and a sweep manifest are
        written there via :meth:`SweepResult.save`.
    raise_on_error:
        Raise :class:`SweepError` if any variant failed (after writing
        results); when False, failures are returned in the result object.
    """
    backend = backend or SerialBackend()
    # Sweeps are context-free fan-out work: start the backend explicitly
    # (pool backends refuse to lazily self-start from ``map``, which used to
    # leave a context-less pool marked as started forever).
    if not backend.is_started:
        backend.start(None)
    results = backend.map(_execute_variant, list(spec.variants))
    sweep_result = SweepResult(spec, results)
    if verbose:
        for result in sweep_result:
            status = "ok" if result.ok else f"FAILED ({result.error})"
            print(f"[sweep:{spec.name}] {result.key}: {status} in {result.seconds:.2f}s")
    if output_dir is not None:
        sweep_result.save(output_dir)
    failures = sweep_result.failures()
    if failures and raise_on_error:
        details = "; ".join(f"{result.key}: {result.error}" for result in failures)
        tracebacks = "\n".join(result.traceback for result in failures if result.traceback)
        raise SweepError(f"sweep {spec.name!r} had {len(failures)} failed variant(s): {details}"
                         + (f"\n{tracebacks}" if tracebacks else ""))
    return sweep_result
