"""``repro.experiments`` — per-table/figure experiment runners and presets.

``experiment_table1`` … ``experiment_fig7`` reproduce the corresponding
artifacts of the paper at a configurable scale (``tiny`` for the benchmark
suite, ``small`` for longer CPU runs, ``paper`` for the published
hyper-parameters).
"""

from .configs import SCALES, ExperimentScale, federated_config_for, get_scale
from .reporting import format_percent, format_run_summary, format_series, format_table
from .sweep import SweepResult, SweepSpec, SweepVariant, VariantResult, run_sweep
from .runner import (
    ALGORITHM_RUNNERS,
    EXPERIMENTS,
    register_algorithm_runner,
    run_algorithm,
    run_experiment,
    experiment_compute_split,
    experiment_fig2,
    experiment_fig3,
    experiment_fig4_dirichlet,
    experiment_fig4_quantity,
    experiment_fig5_table3,
    experiment_fig6,
    experiment_fig7,
    experiment_table1,
    experiment_table2,
    experiment_table4,
    run_fedavg,
    run_fedmd,
    run_fedzkt,
    run_standalone,
)

__all__ = [
    "SCALES",
    "ExperimentScale",
    "get_scale",
    "federated_config_for",
    "SweepSpec",
    "SweepVariant",
    "SweepResult",
    "VariantResult",
    "run_sweep",
    "ALGORITHM_RUNNERS",
    "EXPERIMENTS",
    "register_algorithm_runner",
    "run_algorithm",
    "run_experiment",
    "format_table",
    "format_series",
    "format_percent",
    "format_run_summary",
    "run_fedzkt",
    "run_fedmd",
    "run_fedavg",
    "run_standalone",
    "experiment_table1",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_fig4_quantity",
    "experiment_fig4_dirichlet",
    "experiment_table2",
    "experiment_fig5_table3",
    "experiment_fig6",
    "experiment_table4",
    "experiment_fig7",
    "experiment_compute_split",
]
