"""Experiment presets: scales and per-experiment configurations.

The paper's full experimental scale (50–100 rounds, 200–500 distillation
iterations, 60k-image datasets) is far beyond what a CPU-only numpy
substrate can run in minutes, so every experiment is parameterized by a
*scale*:

* ``"tiny"``   — used by the benchmark suite; minutes of wall clock, enough
  to reproduce the qualitative shape (who wins, trends across sweeps).
* ``"small"``  — a heavier setting for overnight CPU runs.
* ``"paper"``  — the paper's hyper-parameters (rounds, iterations, device
  counts); provided for completeness and documented in EXPERIMENTS.md.

All experiment runners accept a :class:`ExperimentScale` and derive their
:class:`repro.federated.FederatedConfig` from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..federated.config import (
    FederatedConfig,
    HeterogeneityConfig,
    SchedulerConfig,
    ServerConfig,
)

__all__ = ["ExperimentScale", "SCALES", "get_scale", "federated_config_for", "dataset_sizes_for"]


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs shared by every experiment runner.

    Attributes
    ----------
    name:
        Scale identifier (``tiny`` / ``small`` / ``paper``).
    rounds_small / rounds_cifar:
        Communication rounds for the MNIST-family and CIFAR-family datasets
        (the paper uses 50 and 100 respectively).
    local_epochs_small / local_epochs_cifar:
        On-device epochs per round (paper: 5 and 10).
    distillation_iterations_small / distillation_iterations_cifar:
        Server distillation iterations per round (paper: 200 and 500).
    num_devices:
        Default number of devices (paper default: 10).
    train_size / test_size / public_size:
        Synthetic dataset sizes (the paper uses the full 50–60k corpora).
    batch_size / server_batch_size:
        On-device and server batch sizes (paper: 256).
    device_lr / global_lr / device_distill_lr / generator_lr:
        Learning rates; the paper uses 0.01 SGD on devices and the global
        model and 0.001 Adam for the generator.  The reduced scales use a
        slightly higher device/global LR because they take far fewer steps.
    """

    name: str
    rounds_small: int
    rounds_cifar: int
    local_epochs_small: int
    local_epochs_cifar: int
    distillation_iterations_small: int
    distillation_iterations_cifar: int
    num_devices: int
    train_size: int
    test_size: int
    public_size: int
    batch_size: int
    server_batch_size: int
    device_lr: float
    global_lr: float
    device_distill_lr: float
    generator_lr: float
    image_size: int = 16

    def rounds_for(self, family: str) -> int:
        return self.rounds_small if family == "small" else self.rounds_cifar

    def local_epochs_for(self, family: str) -> int:
        return self.local_epochs_small if family == "small" else self.local_epochs_cifar

    def distillation_iterations_for(self, family: str) -> int:
        return (self.distillation_iterations_small if family == "small"
                else self.distillation_iterations_cifar)


SCALES: Dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny",
        rounds_small=2, rounds_cifar=2,
        local_epochs_small=3, local_epochs_cifar=2,
        distillation_iterations_small=30, distillation_iterations_cifar=18,
        num_devices=5,
        train_size=600, test_size=180, public_size=250,
        batch_size=32, server_batch_size=32,
        device_lr=0.05, global_lr=0.05, device_distill_lr=0.02, generator_lr=1e-3,
    ),
    "small": ExperimentScale(
        name="small",
        rounds_small=10, rounds_cifar=8,
        local_epochs_small=4, local_epochs_cifar=4,
        distillation_iterations_small=80, distillation_iterations_cifar=60,
        num_devices=10,
        train_size=3000, test_size=600, public_size=1000,
        batch_size=32, server_batch_size=32,
        device_lr=0.03, global_lr=0.03, device_distill_lr=0.02, generator_lr=1e-3,
    ),
    "paper": ExperimentScale(
        name="paper",
        rounds_small=50, rounds_cifar=100,
        local_epochs_small=5, local_epochs_cifar=10,
        distillation_iterations_small=200, distillation_iterations_cifar=500,
        num_devices=10,
        train_size=50000, test_size=10000, public_size=10000,
        batch_size=256, server_batch_size=256,
        device_lr=0.01, global_lr=0.01, device_distill_lr=0.01, generator_lr=1e-3,
        image_size=32,
    ),
}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name."""
    key = name.lower()
    if key not in SCALES:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")
    return SCALES[key]


def dataset_sizes_for(scale: ExperimentScale) -> Tuple[int, int]:
    """Return ``(train_size, test_size)`` for a scale."""
    return scale.train_size, scale.test_size


def federated_config_for(scale: ExperimentScale, family: str, *, num_devices: int = None,
                         participation_fraction: float = 1.0, prox_mu: float = 0.0,
                         distillation_loss: str = "sl", seed: int = 0,
                         rounds: int = None, local_epochs: int = None,
                         distillation_iterations: int = None,
                         server_shards: int = 1,
                         scheduler: SchedulerConfig = None,
                         heterogeneity: HeterogeneityConfig = None,
                         cohort_fusion: "bool | str" = False,
                         numeric_policy: str = "float64") -> FederatedConfig:
    """Build a :class:`FederatedConfig` for a dataset family at a given scale.

    ``scheduler`` / ``heterogeneity`` select the round-scheduling policy and
    the device timing model (both default to the synchronous, homogeneous
    historical behaviour); ``server_shards > 1`` dispatches the FedZKT
    server update through the execution backend in that many shards.
    ``numeric_policy`` picks the floating dtype every model in the run is
    built and trained with (``"float64"``, the bit-identity tier, or the
    faster ``"float32"``).
    """
    server = ServerConfig(
        distillation_iterations=(distillation_iterations
                                 if distillation_iterations is not None
                                 else scale.distillation_iterations_for(family)),
        batch_size=scale.server_batch_size,
        generator_lr=scale.generator_lr,
        global_lr=scale.global_lr,
        device_distill_lr=scale.device_distill_lr,
        distillation_loss=distillation_loss,
        server_shards=server_shards,
    )
    return FederatedConfig(
        num_devices=num_devices if num_devices is not None else scale.num_devices,
        rounds=rounds if rounds is not None else scale.rounds_for(family),
        local_epochs=local_epochs if local_epochs is not None else scale.local_epochs_for(family),
        batch_size=scale.batch_size,
        device_lr=scale.device_lr,
        device_momentum=0.9,
        participation_fraction=participation_fraction,
        prox_mu=prox_mu,
        seed=seed,
        server=server,
        scheduler=scheduler if scheduler is not None else SchedulerConfig(),
        heterogeneity=heterogeneity if heterogeneity is not None else HeterogeneityConfig(),
        cohort_fusion=cohort_fusion,
        numeric_policy=numeric_policy,
    )
