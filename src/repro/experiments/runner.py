"""Experiment runners: one function per table/figure of the paper.

Every ``experiment_*`` function reproduces the corresponding artifact at a
requested :class:`~repro.experiments.configs.ExperimentScale` and returns a
dictionary with the raw numbers plus a ``formatted`` text rendering that
mirrors the paper's presentation (rows for tables, series for figures).

Each experiment is expressed as a :class:`~repro.experiments.sweep.SweepSpec`
and executed through :func:`~repro.experiments.sweep.run_sweep`, so
cross-variant sweeps (Table 1 datasets, Fig. 4 skew levels, Fig. 7 device
counts, ...) fan out through the same pluggable
:class:`~repro.federated.backend.ExecutionBackend` that parallelizes device
training inside a single run.  Pass ``backend=ProcessPoolBackend(...)`` to
run variants concurrently and ``output_dir=...`` to emit structured
per-variant JSON results.

The benchmark suite calls these with ``scale="tiny"``; heavier scales can
be run from the examples, the ``repro`` CLI, or a custom script.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.fedavg import build_fedavg, build_fedprox
from ..baselines.fedmd import build_fedmd
from ..baselines.standalone import build_standalone, compute_bounds
from ..core.fedzkt import build_fedzkt
from ..core.gradient_probe import GradientNormProbe
from ..datasets.registry import dataset_family, load_dataset, public_dataset_for
from ..federated.backend import ExecutionBackend
from ..federated.config import HeterogeneityConfig, SchedulerConfig
from ..federated.history import TrainingHistory
from ..federated.metrics import resource_split_summary
from ..models.registry import device_specs_for_family, device_suite_for_family
from ..nn.policy import using_numeric_policy
from ..partition import make_partitioner
from .configs import ExperimentScale, federated_config_for, get_scale
from .reporting import format_percent, format_series, format_table, format_timeline
from .sweep import SweepSpec, SweepVariant, run_sweep

__all__ = [
    "run_fedzkt",
    "run_fedmd",
    "run_fedavg",
    "run_standalone",
    "ALGORITHM_RUNNERS",
    "register_algorithm_runner",
    "run_algorithm",
    "experiment_table1",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_fig4_quantity",
    "experiment_fig4_dirichlet",
    "experiment_table2",
    "experiment_fig5_table3",
    "experiment_fig6",
    "experiment_table4",
    "experiment_fig7",
    "experiment_compute_split",
    "experiment_straggler_study",
    "EXPERIMENTS",
    "run_experiment",
]


def _resolve_scale(scale) -> ExperimentScale:
    return scale if isinstance(scale, ExperimentScale) else get_scale(str(scale))


def _partitioner_from_spec(spec: Tuple[str, Dict], num_devices: int, seed: int):
    kind, kwargs = spec
    return make_partitioner(kind, num_devices, seed=seed, **kwargs)


def _scheduling_configs(scheduler: Optional[str], deadline: Optional[float],
                        buffer_size: Optional[int], speed_skew: Optional[float],
                        latency_mean: Optional[float], dropout_rate: Optional[float],
                        ) -> Tuple[Optional[SchedulerConfig], Optional[HeterogeneityConfig]]:
    """Assemble scheduler/heterogeneity config blocks from flat knobs.

    ``None`` everywhere returns ``(None, None)``, preserving the historical
    synchronous, homogeneous defaults.
    """
    scheduler_config = None
    if scheduler is not None or deadline is not None or buffer_size is not None:
        defaults = SchedulerConfig()
        scheduler_config = SchedulerConfig(
            kind=scheduler if scheduler is not None else defaults.kind,
            deadline=deadline if deadline is not None else defaults.deadline,
            buffer_size=buffer_size if buffer_size is not None else defaults.buffer_size,
        )
    heterogeneity_config = None
    if speed_skew is not None or latency_mean is not None or dropout_rate is not None:
        defaults = HeterogeneityConfig()
        heterogeneity_config = HeterogeneityConfig(
            speed_skew=speed_skew if speed_skew is not None else defaults.speed_skew,
            latency_mean=latency_mean if latency_mean is not None else defaults.latency_mean,
            dropout_rate=dropout_rate if dropout_rate is not None else defaults.dropout_rate,
        )
    return scheduler_config, heterogeneity_config


# --------------------------------------------------------------------------- #
# Single-run helpers (the variant runners every sweep is built from)
# --------------------------------------------------------------------------- #
def _single_run(dataset_name: str, make_simulation, *, scale, partition, seed,
                num_devices, participation_fraction, prox_mu, rounds, verbose,
                scheduler, deadline, buffer_size, speed_skew, latency_mean,
                dropout_rate, server_shards, cohort_fusion=False,
                distillation_loss: str = "sl",
                numeric_policy: str = "float64") -> TrainingHistory:
    """Shared scaffold of every per-algorithm runner.

    Resolves the scale, assembles the scheduling/heterogeneity/config
    blocks (strategy capability validation fires when the builder
    normalizes the strategy name), loads the dataset, partitions it, asks
    ``make_simulation(train, test, config, family, partitioner, scale)``
    for the algorithm-specific simulation, runs it, and annotates the
    history.  Keeping this in one place means a new knob lands in every
    algorithm at once instead of drifting per runner.

    The whole run — model construction through training — executes under
    ``numeric_policy`` so every parameter, activation, and optimizer slot
    carries the requested floating dtype; process-pool workers pick the
    policy up from the worker context.
    """
    scale = _resolve_scale(scale)
    family = dataset_family(dataset_name)
    scheduler_config, heterogeneity_config = _scheduling_configs(
        scheduler, deadline, buffer_size, speed_skew, latency_mean, dropout_rate)
    config = federated_config_for(scale, family, num_devices=num_devices,
                                  participation_fraction=participation_fraction,
                                  prox_mu=prox_mu, distillation_loss=distillation_loss,
                                  seed=seed, rounds=rounds,
                                  server_shards=server_shards if server_shards is not None else 1,
                                  scheduler=scheduler_config,
                                  heterogeneity=heterogeneity_config,
                                  cohort_fusion=cohort_fusion,
                                  numeric_policy=numeric_policy)
    with using_numeric_policy(config.numeric_policy):
        train, test = load_dataset(dataset_name, train_size=scale.train_size,
                                   test_size=scale.test_size, image_size=scale.image_size,
                                   seed=seed)
        partitioner = _partitioner_from_spec(partition, config.num_devices, seed)
        simulation = make_simulation(train, test, config, family, partitioner, scale)
        history = simulation.run(verbose=verbose)
    history.config["dataset"] = dataset_name
    history.config["partition"] = f"{partition[0]}{partition[1] or ''}"
    return history


def run_fedzkt(dataset_name: str, scale="tiny", partition: Tuple[str, Dict] = ("iid", {}),
               seed: int = 0, num_devices: Optional[int] = None,
               participation_fraction: float = 1.0, prox_mu: float = 0.0,
               distillation_loss: str = "sl", rounds: Optional[int] = None,
               probe_gradients: bool = False, verbose: bool = False,
               backend: Optional[ExecutionBackend] = None,
               scheduler: Optional[str] = None, deadline: Optional[float] = None,
               buffer_size: Optional[int] = None, speed_skew: Optional[float] = None,
               latency_mean: Optional[float] = None,
               dropout_rate: Optional[float] = None,
               server_shards: Optional[int] = None,
               cohort_fusion: "bool | str" = False,
               numeric_policy: str = "float64") -> TrainingHistory:
    """Run FedZKT on a named dataset and return its training history."""
    def make(train, test, config, family, partitioner, scale):
        simulation = build_fedzkt(train, test, config, family=family,
                                  partitioner=partitioner, backend=backend)
        if probe_gradients:
            server = simulation.server
            probe = GradientNormProbe(server.global_model,
                                      list(server.device_models.values()),
                                      server.generator,
                                      batch_size=min(32, config.server.batch_size),
                                      seed=seed + 99)
            simulation.round_callback = probe
        return simulation

    return _single_run(dataset_name, make, scale=scale, partition=partition, seed=seed,
                       num_devices=num_devices,
                       participation_fraction=participation_fraction, prox_mu=prox_mu,
                       rounds=rounds, verbose=verbose, scheduler=scheduler,
                       deadline=deadline, buffer_size=buffer_size, speed_skew=speed_skew,
                       latency_mean=latency_mean, dropout_rate=dropout_rate,
                       server_shards=server_shards, cohort_fusion=cohort_fusion,
                       distillation_loss=distillation_loss,
                       numeric_policy=numeric_policy)


def run_fedmd(dataset_name: str, public_choice: Optional[str] = None, scale="tiny",
              partition: Tuple[str, Dict] = ("iid", {}), seed: int = 0,
              num_devices: Optional[int] = None, participation_fraction: float = 1.0,
              prox_mu: float = 0.0, rounds: Optional[int] = None,
              digest_epochs: Optional[int] = None,
              verbose: bool = False,
              backend: Optional[ExecutionBackend] = None,
              scheduler: Optional[str] = None, deadline: Optional[float] = None,
              buffer_size: Optional[int] = None,
              speed_skew: Optional[float] = None,
              latency_mean: Optional[float] = None,
              dropout_rate: Optional[float] = None,
              server_shards: Optional[int] = None,
              cohort_fusion: "bool | str" = False,
              numeric_policy: str = "float64") -> TrainingHistory:
    """Run the FedMD baseline with the paper's public-dataset pairing.

    Under ``deadline``/``async`` schedulers FedMD runs its partial-consensus
    variant (consensus over the dispatch cohort); ``server_shards`` is
    accepted only so the strategy capability validation can reject it with
    a uniform message (FedMD has no shardable server phase).
    """
    public_name = []

    def make(train, test, config, family, partitioner, scale):
        public = public_dataset_for(dataset_name, choice=public_choice,
                                    size=scale.public_size,
                                    image_size=scale.image_size, seed=seed + 321)
        public_name.append(public.name)
        return build_fedmd(train, test, public, config, family=family,
                           partitioner=partitioner, digest_epochs=digest_epochs,
                           backend=backend)

    history = _single_run(dataset_name, make, scale=scale, partition=partition,
                          seed=seed, num_devices=num_devices,
                          participation_fraction=participation_fraction,
                          prox_mu=prox_mu, rounds=rounds, verbose=verbose,
                          scheduler=scheduler, deadline=deadline,
                          buffer_size=buffer_size, speed_skew=speed_skew,
                          latency_mean=latency_mean, dropout_rate=dropout_rate,
                          server_shards=server_shards, cohort_fusion=cohort_fusion,
                          numeric_policy=numeric_policy)
    history.config["public_dataset"] = public_name[0]
    return history


def run_fedavg(dataset_name: str, scale="tiny", partition: Tuple[str, Dict] = ("iid", {}),
               seed: int = 0, num_devices: Optional[int] = None,
               participation_fraction: float = 1.0, prox_mu: float = 0.0,
               rounds: Optional[int] = None, verbose: bool = False,
               backend: Optional[ExecutionBackend] = None,
               scheduler: Optional[str] = None, deadline: Optional[float] = None,
               buffer_size: Optional[int] = None, speed_skew: Optional[float] = None,
               latency_mean: Optional[float] = None,
               dropout_rate: Optional[float] = None,
               server_shards: Optional[int] = None,
               cohort_fusion: "bool | str" = False,
               numeric_policy: str = "float64") -> TrainingHistory:
    """Run the FedAvg baseline (homogeneous devices, parameter averaging).

    ``prox_mu > 0`` runs FedProx (FedAvg plus the on-device ℓ2 proximal
    term); histories are labelled accordingly.
    """
    def make(train, test, config, family, partitioner, scale):
        if prox_mu > 0:
            return build_fedprox(train, test, config, prox_mu=prox_mu,
                                 partitioner=partitioner, backend=backend)
        return build_fedavg(train, test, config, partitioner=partitioner,
                            backend=backend)

    return _single_run(dataset_name, make, scale=scale, partition=partition, seed=seed,
                       num_devices=num_devices,
                       participation_fraction=participation_fraction, prox_mu=prox_mu,
                       rounds=rounds, verbose=verbose, scheduler=scheduler,
                       deadline=deadline, buffer_size=buffer_size, speed_skew=speed_skew,
                       latency_mean=latency_mean, dropout_rate=dropout_rate,
                       server_shards=server_shards, cohort_fusion=cohort_fusion,
                       numeric_policy=numeric_policy)


def run_standalone(dataset_name: str, scale="tiny", partition: Tuple[str, Dict] = ("iid", {}),
                   seed: int = 0, num_devices: Optional[int] = None,
                   participation_fraction: float = 1.0, prox_mu: float = 0.0,
                   rounds: Optional[int] = None, verbose: bool = False,
                   backend: Optional[ExecutionBackend] = None,
                   scheduler: Optional[str] = None, deadline: Optional[float] = None,
                   buffer_size: Optional[int] = None,
                   speed_skew: Optional[float] = None,
                   latency_mean: Optional[float] = None,
                   dropout_rate: Optional[float] = None,
                   server_shards: Optional[int] = None,
                   cohort_fusion: "bool | str" = False,
                   numeric_policy: str = "float64") -> TrainingHistory:
    """Run the standalone (no-collaboration) lower-bound trajectory.

    Same heterogeneous device suite and partitioning as FedZKT, but devices
    never exchange anything — the per-round history is the floor any
    collaboration curve should clear.  Scheduler/sharding knobs are
    accepted only so capability validation can reject them uniformly.
    """
    def make(train, test, config, family, partitioner, scale):
        return build_standalone(train, test, config, family=family,
                                partitioner=partitioner, backend=backend)

    return _single_run(dataset_name, make, scale=scale, partition=partition, seed=seed,
                       num_devices=num_devices,
                       participation_fraction=participation_fraction, prox_mu=prox_mu,
                       rounds=rounds, verbose=verbose, scheduler=scheduler,
                       deadline=deadline, buffer_size=buffer_size, speed_skew=speed_skew,
                       latency_mean=latency_mean, dropout_rate=dropout_rate,
                       server_shards=server_shards, cohort_fusion=cohort_fusion,
                       numeric_policy=numeric_policy)


#: Strategy-registry-name → single-run entry point; the CLI's
#: ``repro run --algorithm`` dispatches through this.  Plugins registered
#: with :func:`repro.federated.strategies.register_strategy` become CLI-
#: runnable by attaching a runner via :func:`register_algorithm_runner`.
ALGORITHM_RUNNERS: Dict[str, Callable[..., TrainingHistory]] = {
    "fedzkt": run_fedzkt,
    "fedavg": run_fedavg,
    "fedmd": run_fedmd,
    "standalone": run_standalone,
}


def register_algorithm_runner(name: str, runner: Callable[..., TrainingHistory], *,
                              replace: bool = False) -> Callable[..., TrainingHistory]:
    """Attach a single-run entry point to a registered strategy name.

    ``runner(dataset_name, **kwargs)`` should accept the same keyword set
    as the built-in runners (see :func:`run_fedavg` for the minimal
    surface) and return a :class:`TrainingHistory`.  Once attached, the
    strategy is runnable via :func:`run_algorithm` and
    ``repro run --algorithm <name>``.
    """
    if not replace and name in ALGORITHM_RUNNERS:
        raise ValueError(f"algorithm runner {name!r} is already registered; "
                         "pass replace=True to override")
    ALGORITHM_RUNNERS[name] = runner
    return runner


def run_algorithm(algorithm: str, dataset_name: str, **kwargs) -> TrainingHistory:
    """Run any algorithm with a registered runner by strategy name.

    Capability violations (unsupported scheduler kind, ``server_shards``
    on a strategy without a shardable server phase) surface as
    ``ValueError`` from the config's strategy validation.
    """
    if algorithm not in ALGORITHM_RUNNERS:
        from ..federated.strategies import strategy_names

        if algorithm in strategy_names():
            raise ValueError(
                f"strategy {algorithm!r} is registered but has no single-run "
                "entry point; attach one with repro.experiments.runner."
                "register_algorithm_runner, or drive it from Python via "
                "repro.federated.Simulation")
        raise ValueError(f"unknown algorithm {algorithm!r}; "
                         f"choose from {sorted(ALGORITHM_RUNNERS)}")
    return ALGORITHM_RUNNERS[algorithm](dataset_name, **kwargs)


def _headline_accuracy(history: TrainingHistory) -> float:
    """The paper reports the best accuracy reached; global model if present,
    otherwise the mean on-device accuracy (FedMD has no global model)."""
    best_global = history.best_global_accuracy()
    return best_global if best_global is not None else history.best_mean_device_accuracy()


def _table3_bounds(dataset: str, scale: ExperimentScale, seed: int,
                   bound_epochs: Optional[int]) -> List[Dict[str, object]]:
    """Standalone lower/upper bounds for Table III (a sweep variant runner)."""
    family = dataset_family(dataset)
    num_devices = scale.num_devices
    specs = device_specs_for_family(family, num_devices)
    train, test = load_dataset(dataset, train_size=scale.train_size, test_size=scale.test_size,
                               image_size=scale.image_size, seed=seed)
    partitioner = make_partitioner("iid", num_devices, seed=seed)
    shards = partitioner.partition(train)
    models = device_suite_for_family(family, num_devices, train.input_shape,
                                     train.num_classes, seed=seed)
    epochs = bound_epochs if bound_epochs is not None else max(
        1, scale.local_epochs_for(family) * scale.rounds_for(family))
    bounds = compute_bounds(models, shards, train, test, epochs=epochs, lr=scale.device_lr,
                            batch_size=scale.batch_size, seed=seed,
                            labels=[spec.describe() for spec in specs])
    return [bound.as_dict() for bound in bounds]


def _compute_split_run(dataset: str, scale: ExperimentScale, seed: int) -> Dict[str, object]:
    """Full FedZKT run + server/device compute accounting (a sweep variant runner)."""
    family = dataset_family(dataset)
    config = federated_config_for(scale, family, seed=seed)
    train, test = load_dataset(dataset, train_size=scale.train_size, test_size=scale.test_size,
                               image_size=scale.image_size, seed=seed)
    simulation = build_fedzkt(train, test, config, family=family)
    simulation.run()
    return resource_split_summary(simulation.devices,
                                  simulation.server.server_parameter_updates,
                                  rounds=config.rounds, local_epochs=config.local_epochs)


def _sweep(name: str, variants: Sequence[SweepVariant],
           backend: Optional[ExecutionBackend], output_dir, description: str = ""):
    return run_sweep(SweepSpec(name=name, variants=list(variants), description=description),
                     backend=backend, output_dir=output_dir)


# --------------------------------------------------------------------------- #
# Table I — IID accuracy, FedZKT vs FedMD (two public datasets for CIFAR-10)
# --------------------------------------------------------------------------- #
def experiment_table1(scale="tiny", datasets: Optional[Sequence[str]] = None,
                      seed: int = 0, backend: Optional[ExecutionBackend] = None,
                      output_dir=None) -> Dict[str, object]:
    """FedZKT vs FedMD under IID data, one row per (dataset, public dataset)."""
    scale = _resolve_scale(scale)
    datasets = list(datasets) if datasets is not None else ["mnist", "fashion", "kmnist", "cifar10"]
    variants: List[SweepVariant] = []
    for name in datasets:
        variants.append(SweepVariant(
            key=f"fedzkt|{name}", runner=run_fedzkt,
            kwargs={"dataset_name": name, "scale": scale, "seed": seed},
            tags={"algorithm": "fedzkt", "dataset": name}))
        public_choices = ["cifar100", "svhn"] if name == "cifar10" else [None]
        for choice in public_choices:
            variants.append(SweepVariant(
                key=f"fedmd|{name}|{choice or 'default'}", runner=run_fedmd,
                kwargs={"dataset_name": name, "public_choice": choice, "scale": scale,
                        "seed": seed},
                tags={"algorithm": "fedmd", "dataset": name, "public_choice": choice}))
    sweep = _sweep("table1", variants, backend, output_dir,
                   description="Table I — IID accuracy, FedZKT vs FedMD")

    rows: List[List[str]] = []
    results: Dict[str, Dict[str, float]] = {}
    for name in datasets:
        fedzkt_acc = _headline_accuracy(sweep.value(f"fedzkt|{name}"))
        public_choices = ["cifar100", "svhn"] if name == "cifar10" else [None]
        for choice in public_choices:
            fedmd_history = sweep.value(f"fedmd|{name}|{choice or 'default'}")
            fedmd_acc = _headline_accuracy(fedmd_history)
            public_name = fedmd_history.config["public_dataset"]
            rows.append([name, public_name, format_percent(fedmd_acc), format_percent(fedzkt_acc)])
            results[f"{name}|{public_name}"] = {"fedmd": fedmd_acc, "fedzkt": fedzkt_acc}
    formatted = format_table(
        ["On-Device Dataset", "Public Dataset (FedMD)", "FedMD Accuracy", "FedZKT Accuracy"],
        rows, title="Table I — IID on-device data")
    return {"rows": rows, "results": results, "formatted": formatted}


# --------------------------------------------------------------------------- #
# Figure 2 — norm of gradients w.r.t. input data for the three losses
# --------------------------------------------------------------------------- #
def experiment_fig2(scale="tiny", dataset: str = "mnist", seed: int = 0,
                    backend: Optional[ExecutionBackend] = None,
                    output_dir=None) -> Dict[str, object]:
    """Per-round input-gradient norms of the SL / KL / ℓ1 losses (MNIST, IID)."""
    scale = _resolve_scale(scale)
    sweep = _sweep("fig2", [SweepVariant(
        key="probe", runner=run_fedzkt,
        kwargs={"dataset_name": dataset, "scale": scale, "seed": seed,
                "probe_gradients": True},
        tags={"algorithm": "fedzkt", "dataset": dataset, "probe": True})],
        backend, output_dir, description="Figure 2 — input-gradient norms")
    history = sweep.value("probe")
    curves = {
        name: history.server_metric_curve(f"grad_norm_{name}")
        for name in ("kl", "l1", "sl")
    }
    rounds = history.rounds()
    lines = [format_series(f"{name} loss", rounds, values, y_format=lambda v: f"{v:.4g}")
             for name, values in curves.items()]
    formatted = "Figure 2 — norm of disagreement gradients w.r.t. input data\n" + "\n".join(lines)
    return {"rounds": rounds, "curves": curves, "formatted": formatted}


# --------------------------------------------------------------------------- #
# Figure 3 — learning curves of FedZKT and FedMD (CIFAR-10, IID)
# --------------------------------------------------------------------------- #
def experiment_fig3(scale="tiny", dataset: str = "cifar10", seed: int = 0,
                    backend: Optional[ExecutionBackend] = None,
                    output_dir=None) -> Dict[str, object]:
    """Accuracy-per-round curves for FedZKT and FedMD (public = CIFAR-100)."""
    scale = _resolve_scale(scale)
    sweep = _sweep("fig3", [
        SweepVariant(key="fedzkt", runner=run_fedzkt,
                     kwargs={"dataset_name": dataset, "scale": scale, "seed": seed},
                     tags={"algorithm": "fedzkt", "dataset": dataset}),
        SweepVariant(key="fedmd", runner=run_fedmd,
                     kwargs={"dataset_name": dataset, "public_choice": "cifar100",
                             "scale": scale, "seed": seed},
                     tags={"algorithm": "fedmd", "dataset": dataset}),
    ], backend, output_dir, description="Figure 3 — learning curves")
    fedzkt_history = sweep.value("fedzkt")
    fedmd_history = sweep.value("fedmd")
    fedzkt_curve = fedzkt_history.global_accuracy_curve()
    fedmd_curve = fedmd_history.mean_device_accuracy_curve()
    formatted = "Figure 3 — learning curves (CIFAR-10, IID)\n" + "\n".join([
        format_series("FedZKT (global model)", fedzkt_history.rounds(), fedzkt_curve),
        format_series("FedMD (mean device)", fedmd_history.rounds(), fedmd_curve),
    ])
    return {
        "fedzkt": fedzkt_curve,
        "fedmd": fedmd_curve,
        "rounds": fedzkt_history.rounds(),
        "formatted": formatted,
    }


# --------------------------------------------------------------------------- #
# Figure 4 — non-IID label imbalance sweeps
# --------------------------------------------------------------------------- #
def experiment_fig4_quantity(scale="tiny", dataset: str = "mnist",
                             classes_per_device: Sequence[int] = (2, 5), prox_mu: float = 0.05,
                             seed: int = 0, backend: Optional[ExecutionBackend] = None,
                             output_dir=None) -> Dict[str, object]:
    """Quantity-based label imbalance: accuracy vs classes-per-device (Fig. 4 a–d)."""
    scale = _resolve_scale(scale)
    variants: List[SweepVariant] = []
    for c in classes_per_device:
        partition = ("quantity", {"classes_per_device": int(c)})
        variants.append(SweepVariant(
            key=f"fedzkt|C={int(c)}", runner=run_fedzkt,
            kwargs={"dataset_name": dataset, "scale": scale, "partition": partition,
                    "prox_mu": prox_mu, "seed": seed},
            tags={"algorithm": "fedzkt", "classes_per_device": int(c)}))
        variants.append(SweepVariant(
            key=f"fedmd|C={int(c)}", runner=run_fedmd,
            kwargs={"dataset_name": dataset, "scale": scale, "partition": partition,
                    "seed": seed},
            tags={"algorithm": "fedmd", "classes_per_device": int(c)}))
    sweep = _sweep("fig4_quantity", variants, backend, output_dir,
                   description="Figure 4 — quantity-based label imbalance")
    fedzkt_points = [_headline_accuracy(sweep.value(f"fedzkt|C={int(c)}"))
                     for c in classes_per_device]
    fedmd_points = [_headline_accuracy(sweep.value(f"fedmd|C={int(c)}"))
                    for c in classes_per_device]
    formatted = (f"Figure 4 (quantity-based label imbalance, {dataset})\n"
                 + format_series("FedZKT", classes_per_device, fedzkt_points) + "\n"
                 + format_series("FedMD", classes_per_device, fedmd_points))
    return {"classes_per_device": list(classes_per_device), "fedzkt": fedzkt_points,
            "fedmd": fedmd_points, "formatted": formatted}


def experiment_fig4_dirichlet(scale="tiny", dataset: str = "mnist",
                              betas: Sequence[float] = (0.1, 1.0), prox_mu: float = 0.05,
                              seed: int = 0, backend: Optional[ExecutionBackend] = None,
                              output_dir=None) -> Dict[str, object]:
    """Distribution-based label imbalance: accuracy vs Dirichlet β (Fig. 4 e–h)."""
    scale = _resolve_scale(scale)
    variants: List[SweepVariant] = []
    for beta in betas:
        partition = ("dirichlet", {"beta": float(beta)})
        variants.append(SweepVariant(
            key=f"fedzkt|beta={float(beta)}", runner=run_fedzkt,
            kwargs={"dataset_name": dataset, "scale": scale, "partition": partition,
                    "prox_mu": prox_mu, "seed": seed},
            tags={"algorithm": "fedzkt", "beta": float(beta)}))
        variants.append(SweepVariant(
            key=f"fedmd|beta={float(beta)}", runner=run_fedmd,
            kwargs={"dataset_name": dataset, "scale": scale, "partition": partition,
                    "seed": seed},
            tags={"algorithm": "fedmd", "beta": float(beta)}))
    sweep = _sweep("fig4_dirichlet", variants, backend, output_dir,
                   description="Figure 4 — distribution-based label imbalance")
    fedzkt_points = [_headline_accuracy(sweep.value(f"fedzkt|beta={float(b)}")) for b in betas]
    fedmd_points = [_headline_accuracy(sweep.value(f"fedmd|beta={float(b)}")) for b in betas]
    formatted = (f"Figure 4 (distribution-based label imbalance, {dataset})\n"
                 + format_series("FedZKT", betas, fedzkt_points) + "\n"
                 + format_series("FedMD", betas, fedmd_points))
    return {"betas": list(betas), "fedzkt": fedzkt_points, "fedmd": fedmd_points,
            "formatted": formatted}


# --------------------------------------------------------------------------- #
# Table II — loss-function ablation under non-IID data
# --------------------------------------------------------------------------- #
def experiment_table2(scale="tiny", dataset: str = "cifar10", classes_per_device: int = 5,
                      beta: float = 0.5, prox_mu: float = 0.05, seed: int = 0,
                      backend: Optional[ExecutionBackend] = None,
                      output_dir=None) -> Dict[str, object]:
    """Compare KL / ℓ1 / SL distillation losses in the two non-IID scenarios."""
    scale = _resolve_scale(scale)
    scenarios = {
        f"C = {classes_per_device}": ("quantity", {"classes_per_device": classes_per_device}),
        f"beta = {beta}": ("dirichlet", {"beta": beta}),
    }
    variants = [
        SweepVariant(
            key=f"{label}|{loss_name}", runner=run_fedzkt,
            kwargs={"dataset_name": dataset, "scale": scale, "partition": partition,
                    "prox_mu": prox_mu, "distillation_loss": loss_name, "seed": seed},
            tags={"scenario": label, "distillation_loss": loss_name})
        for label, partition in scenarios.items()
        for loss_name in ("kl", "l1", "sl")
    ]
    sweep = _sweep("table2", variants, backend, output_dir,
                   description="Table II — distillation-loss ablation")
    results: Dict[str, Dict[str, float]] = {}
    rows = []
    for label in scenarios:
        row = [label]
        results[label] = {}
        for loss_name in ("kl", "l1", "sl"):
            acc = _headline_accuracy(sweep.value(f"{label}|{loss_name}"))
            results[label][loss_name] = acc
            row.append(format_percent(acc))
        rows.append(row)
    formatted = format_table(["Non-IID scenario", "KL-divergence", "l1 norm", "SL loss"], rows,
                             title=f"Table II — loss ablation ({dataset}, non-IID)")
    return {"results": results, "rows": rows, "formatted": formatted}


# --------------------------------------------------------------------------- #
# Figure 5 + Table III — heterogeneous on-device models, per-device curves and bounds
# --------------------------------------------------------------------------- #
def experiment_fig5_table3(scale="tiny", dataset: str = "cifar10", seed: int = 0,
                           bound_epochs: Optional[int] = None,
                           backend: Optional[ExecutionBackend] = None,
                           output_dir=None) -> Dict[str, object]:
    """Per-device learning curves (Fig. 5) and standalone bounds (Table III)."""
    scale = _resolve_scale(scale)
    sweep = _sweep("fig5_table3", [
        SweepVariant(key="fedzkt", runner=run_fedzkt,
                     kwargs={"dataset_name": dataset, "scale": scale, "seed": seed},
                     tags={"algorithm": "fedzkt", "dataset": dataset}),
        SweepVariant(key="bounds", runner=_table3_bounds,
                     kwargs={"dataset": dataset, "scale": scale, "seed": seed,
                             "bound_epochs": bound_epochs},
                     tags={"algorithm": "standalone", "dataset": dataset}),
    ], backend, output_dir, description="Figure 5 / Table III — heterogeneous models")
    history = sweep.value("fedzkt")
    bounds = sweep.value("bounds")
    num_devices = history.config["num_devices"]

    curves = {device_id: history.device_accuracy_curve(device_id)
              for device_id in range(num_devices)}
    final = history.final_device_accuracies()
    rows = [
        [f"Device {b['device_id'] + 1}: {b['architecture']}", format_percent(b["upper_bound"]),
         format_percent(b["lower_bound"]), format_percent(final.get(b["device_id"]))]
        for b in bounds
    ]
    formatted = (
        format_table(["Model Architecture", "Upper Bound", "Lower Bound", "FedZKT (final)"], rows,
                     title=f"Table III — standalone bounds vs FedZKT ({dataset}, IID)")
        + "\n\nFigure 5 — per-device learning curves\n"
        + "\n".join(format_series(f"Device {device_id + 1}", history.rounds(), curve)
                    for device_id, curve in curves.items())
    )
    return {"bounds": bounds, "curves": curves, "final_accuracies": final,
            "formatted": formatted}


# --------------------------------------------------------------------------- #
# Figure 6 — straggler effect (participation fraction sweep)
# --------------------------------------------------------------------------- #
def experiment_fig6(scale="tiny", dataset: str = "mnist",
                    portions: Sequence[float] = (0.2, 0.6, 1.0), seed: int = 0,
                    backend: Optional[ExecutionBackend] = None,
                    output_dir=None) -> Dict[str, object]:
    """Average on-device accuracy per round for different active portions ``p``."""
    scale = _resolve_scale(scale)
    variants = [
        SweepVariant(key=f"p={float(portion)}", runner=run_fedzkt,
                     kwargs={"dataset_name": dataset, "scale": scale,
                             "participation_fraction": float(portion), "seed": seed},
                     tags={"participation_fraction": float(portion)})
        for portion in portions
    ]
    sweep = _sweep("fig6", variants, backend, output_dir,
                   description="Figure 6 — straggler effect")
    curves = {float(portion): sweep.value(f"p={float(portion)}").mean_device_accuracy_curve()
              for portion in portions}
    rounds = list(range(1, len(next(iter(curves.values()))) + 1))
    formatted = (f"Figure 6 — straggler effect ({dataset}, IID)\n"
                 + "\n".join(format_series(f"p = {portion}", rounds, curve)
                             for portion, curve in curves.items()))
    return {"portions": list(portions), "curves": curves, "formatted": formatted}


# --------------------------------------------------------------------------- #
# Table IV — effect of the ℓ2 regularizer under non-IID data
# --------------------------------------------------------------------------- #
def experiment_table4(scale="tiny", dataset: str = "cifar10", classes_per_device: int = 5,
                      beta: float = 0.5, prox_mu: float = 0.05, seed: int = 0,
                      backend: Optional[ExecutionBackend] = None,
                      output_dir=None) -> Dict[str, object]:
    """FedZKT with and without the on-device ℓ2 proximal term (Eq. 9)."""
    scale = _resolve_scale(scale)
    scenarios = {
        f"C = {classes_per_device}": ("quantity", {"classes_per_device": classes_per_device}),
        f"beta = {beta}": ("dirichlet", {"beta": beta}),
    }
    variants = [
        SweepVariant(
            key=f"{label}|{reg_label}", runner=run_fedzkt,
            kwargs={"dataset_name": dataset, "scale": scale, "partition": partition,
                    "prox_mu": mu, "seed": seed},
            tags={"scenario": label, "prox_mu": mu})
        for label, partition in scenarios.items()
        for reg_label, mu in (("no_reg", 0.0), ("l2_reg", prox_mu))
    ]
    sweep = _sweep("table4", variants, backend, output_dir,
                   description="Table IV — ℓ2 regularizer ablation")
    rows = []
    results: Dict[str, Dict[str, float]] = {}
    for label in scenarios:
        without = _headline_accuracy(sweep.value(f"{label}|no_reg"))
        with_reg = _headline_accuracy(sweep.value(f"{label}|l2_reg"))
        rows.append([label, format_percent(without), format_percent(with_reg)])
        results[label] = {"no_regularization": without, "l2_regularization": with_reg}
    formatted = format_table(["Non-IID scenario", "no regularization", "l2 regularization"], rows,
                             title=f"Table IV — effect of l2 regularization ({dataset}, non-IID)")
    return {"results": results, "rows": rows, "formatted": formatted}


# --------------------------------------------------------------------------- #
# Figure 7 — effect of the number of devices
# --------------------------------------------------------------------------- #
def experiment_fig7(scale="tiny", dataset: str = "mnist",
                    device_counts: Sequence[int] = (5, 10), seed: int = 0,
                    backend: Optional[ExecutionBackend] = None,
                    output_dir=None) -> Dict[str, object]:
    """Average on-device accuracy per round for different device counts K."""
    scale = _resolve_scale(scale)
    variants = [
        SweepVariant(key=f"K={int(count)}", runner=run_fedzkt,
                     kwargs={"dataset_name": dataset, "scale": scale,
                             "num_devices": int(count), "seed": seed},
                     tags={"num_devices": int(count)})
        for count in device_counts
    ]
    sweep = _sweep("fig7", variants, backend, output_dir,
                   description="Figure 7 — effect of device count")
    curves = {int(count): sweep.value(f"K={int(count)}").mean_device_accuracy_curve()
              for count in device_counts}
    rounds = list(range(1, len(next(iter(curves.values()))) + 1))
    formatted = (f"Figure 7 — effect of device number ({dataset}, IID)\n"
                 + "\n".join(format_series(f"{count} devices", rounds, curve)
                             for count, curve in curves.items()))
    return {"device_counts": list(device_counts), "curves": curves, "formatted": formatted}


# --------------------------------------------------------------------------- #
# Extension ablation — server/device compute split (the resource argument)
# --------------------------------------------------------------------------- #
def experiment_compute_split(scale="tiny", dataset: str = "mnist", seed: int = 0,
                             backend: Optional[ExecutionBackend] = None,
                             output_dir=None) -> Dict[str, object]:
    """Quantify how much of the total work FedZKT places on the server."""
    scale = _resolve_scale(scale)
    sweep = _sweep("compute_split", [
        SweepVariant(key="fedzkt", runner=_compute_split_run,
                     kwargs={"dataset": dataset, "scale": scale, "seed": seed},
                     tags={"algorithm": "fedzkt", "dataset": dataset}),
    ], backend, output_dir, description="Compute-split ablation")
    summary = sweep.value("fedzkt")
    rows = [[entry["device_id"], entry["model_parameters"], entry["compute_estimate"]]
            for entry in summary["per_device"]]
    formatted = (
        format_table(["Device", "Model parameters", "Device compute (param-grads)"], rows,
                     title=f"Compute-split ablation ({dataset})")
        + f"\nServer compute (param-grads): {summary['server_total_compute']}"
        + f"\nServer/device compute ratio: {summary['server_to_device_ratio']:.1f}x"
    )
    return {"summary": summary, "formatted": formatted}


# --------------------------------------------------------------------------- #
# Straggler study — sync vs deadline vs async scheduling under speed skew
# --------------------------------------------------------------------------- #
def experiment_straggler_study(scale="tiny", dataset: str = "mnist",
                               speed_skew: float = 4.0, deadline: float = 1.5,
                               buffer_size: int = 2, latency_mean: float = 0.1,
                               seed: int = 0,
                               backend: Optional[ExecutionBackend] = None,
                               output_dir=None) -> Dict[str, object]:
    """Wall-clock-vs-accuracy of sync / deadline / async rounds under skew.

    All three variants run the same FedZKT workload on the same fleet,
    whose compute speeds are log-spaced over a ``speed_skew``× range.  The
    synchronous scheduler waits for the slowest device every round; the
    deadline scheduler aggregates whatever arrives in time (stragglers land
    late with staleness); the async scheduler aggregates every
    ``buffer_size`` arrivals.  The comparison that matters is accuracy as a
    function of *simulated time*, not of round count.
    """
    scale = _resolve_scale(scale)
    kinds = ("sync", "deadline", "async")
    variants = [
        SweepVariant(
            key=kind, runner=run_fedzkt,
            kwargs={"dataset_name": dataset, "scale": scale, "seed": seed,
                    "scheduler": kind, "deadline": deadline, "buffer_size": buffer_size,
                    "speed_skew": speed_skew, "latency_mean": latency_mean},
            tags={"scheduler": kind, "speed_skew": speed_skew})
        for kind in kinds
    ]
    sweep = _sweep("straggler_study", variants, backend, output_dir,
                   description="Straggler study — scheduler comparison under speed skew")

    histories = {kind: sweep.value(kind) for kind in kinds}
    # Time-to-target: the accuracy every scheduler eventually reaches, so the
    # comparison is about *when*, not *whether*.
    target = min(_headline_accuracy(history) for history in histories.values()) * 0.9
    rows = []
    results: Dict[str, Dict[str, object]] = {}
    for kind, history in histories.items():
        final_time = history.records[-1].sim_time if len(history) else None
        reach_time = history.time_to_accuracy(target)
        stale_curve = history.server_metric_curve("mean_staleness")
        results[kind] = {
            "best_accuracy": _headline_accuracy(history),
            "final_sim_time": final_time,
            "time_to_target": reach_time,
            "mean_staleness": float(sum(stale_curve) / len(stale_curve)) if stale_curve else 0.0,
            "timeline": history.accuracy_timeline(),
        }
        rows.append([kind, format_percent(results[kind]["best_accuracy"]),
                     f"{final_time:.2f}" if final_time is not None else "n/a",
                     f"{reach_time:.2f}" if reach_time is not None else "n/a",
                     f"{results[kind]['mean_staleness']:.2f}"])
    formatted = (
        format_table(["Scheduler", "Best accuracy", "Sim time (total)",
                      f"Time to {format_percent(target)}", "Mean staleness"], rows,
                     title=f"Straggler study ({dataset}, {speed_skew:.0f}x speed skew)")
        + "\n\nAccuracy vs simulated wall clock\n"
        + "\n".join(format_timeline(kind, results[kind]["timeline"]) for kind in kinds)
    )
    return {"results": results, "rows": rows, "target_accuracy": target,
            "formatted": formatted}


# --------------------------------------------------------------------------- #
# Registry (used by the ``repro`` CLI)
# --------------------------------------------------------------------------- #
EXPERIMENTS: Dict[str, Callable[..., Dict[str, object]]] = {
    "table1": experiment_table1,
    "fig2": experiment_fig2,
    "fig3": experiment_fig3,
    "fig4_quantity": experiment_fig4_quantity,
    "fig4_dirichlet": experiment_fig4_dirichlet,
    "table2": experiment_table2,
    "fig5_table3": experiment_fig5_table3,
    "fig6": experiment_fig6,
    "table4": experiment_table4,
    "fig7": experiment_fig7,
    "compute_split": experiment_compute_split,
    "straggler_study": experiment_straggler_study,
}


def run_experiment(name: str, **kwargs) -> Dict[str, object]:
    """Run a named experiment (see :data:`EXPERIMENTS` for the registry)."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](**kwargs)
