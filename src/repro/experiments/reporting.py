"""Formatting helpers: render experiment results as the paper's tables/series.

Every experiment runner returns a plain dictionary; these helpers turn the
dictionaries into aligned text tables and series printouts so the benchmark
harness and the examples can show results in the same form the paper does.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_percent", "format_run_summary",
           "format_timeline"]


def format_percent(value) -> str:
    """Render a fraction as a percentage with two decimals (paper style)."""
    if value is None:
        return "n/a"
    return f"{100.0 * float(value):.2f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object],
                  y_format=format_percent) -> str:
    """Render an (x, y) series as a compact single-line listing."""
    points = ", ".join(f"{x}:{y_format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def format_timeline(name: str, points: Sequence[Sequence[float]],
                    y_format=format_percent) -> str:
    """Render (sim_time, value) pairs as a compact single-line timeline.

    Used for the scheduler studies' wall-clock-vs-accuracy curves (see
    :meth:`repro.federated.TrainingHistory.accuracy_timeline`).
    """
    rendered = ", ".join(f"t={time:.2f}:{y_format(value)}" for time, value in points)
    return f"{name}: {rendered}"


def format_run_summary(summary: Mapping[str, object]) -> str:
    """One-line summary of a training history's headline numbers."""
    parts = [f"algorithm={summary.get('algorithm')}", f"rounds={summary.get('rounds')}"]
    for key in ("final_global_accuracy", "best_global_accuracy",
                "final_mean_device_accuracy", "best_mean_device_accuracy"):
        value = summary.get(key)
        if value is not None:
            parts.append(f"{key}={format_percent(value)}")
    return " ".join(parts)
