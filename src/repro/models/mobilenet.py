"""MobileNetV2-style compact classifier (Models C and D of Table V).

Implements the inverted-residual bottleneck: a 1×1 expansion convolution, a
depthwise 3×3 convolution, and a linear 1×1 projection, with an identity
shortcut when the spatial size and channel count are preserved.  The
``width_multiplier`` scales every stage, matching the paper's 0.8 / 0.6
variants.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..nn import layers
from ..nn.module import Module, ModuleList, Sequential
from ..nn.tensor import Tensor
from .base import ClassificationModel

__all__ = ["MobileNetV2", "InvertedResidual"]


class InvertedResidual(Module):
    """MobileNetV2 inverted-residual block with linear bottleneck."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 expand_ratio: int = 2, seed: Optional[int] = None) -> None:
        super().__init__()
        if stride not in (1, 2):
            raise ValueError("stride must be 1 or 2")
        self.use_residual = stride == 1 and in_channels == out_channels
        hidden = max(4, int(round(in_channels * expand_ratio)))

        def seeded(offset: int) -> Optional[int]:
            return None if seed is None else seed + offset

        blocks = []
        if expand_ratio != 1:
            blocks.extend([
                layers.Conv2d(in_channels, hidden, 1, seed=seeded(0)),
                layers.BatchNorm2d(hidden),
                layers.ReLU(),
            ])
        else:
            hidden = in_channels
        blocks.extend([
            layers.DepthwiseConv2d(hidden, 3, stride=stride, padding=1, seed=seeded(1)),
            layers.BatchNorm2d(hidden),
            layers.ReLU(),
            # Linear projection: no activation after the bottleneck.
            layers.Conv2d(hidden, out_channels, 1, seed=seeded(2)),
            layers.BatchNorm2d(out_channels),
        ])
        self.block = Sequential(*blocks)

    def forward(self, x: Tensor) -> Tensor:
        out = self.block(x)
        if self.use_residual:
            out = out + x
        return out


class MobileNetV2(ClassificationModel):
    """Compact MobileNetV2 classifier.

    Parameters
    ----------
    width_multiplier:
        Scales every stage's channel count; the paper uses 0.8 (Model C) and
        0.6 (Model D).
    stage_channels:
        Base output channels of each inverted-residual stage.
    expand_ratio:
        Expansion factor inside each block (6 in the full-size network; a
        smaller default keeps the compact models CPU-friendly).
    """

    def __init__(self, input_shape: Tuple[int, int, int], num_classes: int,
                 width_multiplier: float = 1.0, stage_channels: Sequence[int] = (16, 32, 64),
                 expand_ratio: int = 2, seed: Optional[int] = None) -> None:
        super().__init__(input_shape, num_classes)
        self.width_multiplier = float(width_multiplier)
        in_channels = self.input_shape[0]

        def seeded(offset: int) -> Optional[int]:
            return None if seed is None else seed + offset

        def scaled(channels: int) -> int:
            return max(4, int(round(channels * self.width_multiplier)))

        stem_channels = scaled(16)
        self.stem = Sequential(
            layers.Conv2d(in_channels, stem_channels, 3, stride=1, padding=1, seed=seeded(0)),
            layers.BatchNorm2d(stem_channels),
            layers.ReLU(),
        )

        blocks = ModuleList()
        previous = stem_channels
        for index, base in enumerate(stage_channels):
            width = scaled(base)
            stride = 2 if index > 0 else 1
            blocks.append(InvertedResidual(previous, width, stride=stride,
                                           expand_ratio=expand_ratio, seed=seeded(100 * (index + 1))))
            blocks.append(InvertedResidual(width, width, stride=1,
                                           expand_ratio=expand_ratio, seed=seeded(100 * (index + 1) + 50)))
            previous = width
        self.blocks = blocks
        self.pool = layers.GlobalAvgPool2d()
        self.classifier = layers.Linear(previous, num_classes, seed=seeded(999))

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        return self.classifier(self.pool(out))
