"""Server-side generative model for zero-shot knowledge distillation.

The generator maps Gaussian noise ``z ~ N(0, I)`` to synthetic images that
are adversarially optimized to maximize the disagreement between the global
model and the on-device ensemble (Eq. 2 of the paper).  It follows the
DCGAN/DAFL-style recipe used by data-free distillation work: a linear
projection of the noise to a low-resolution feature map, then alternating
nearest-neighbour up-sampling and convolution stages with batch
normalization, and a ``tanh`` output so images live in ``[-1, 1]`` — the
same range the synthetic datasets are normalized to.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import layers
from ..nn.module import Module, Sequential
from ..nn.tensor import Tensor

__all__ = ["Generator"]


class Generator(Module):
    """Noise-to-image generator used by the FedZKT server.

    Parameters
    ----------
    noise_dim:
        Dimension of the latent Gaussian noise vector.
    output_shape:
        ``(channels, height, width)`` of the generated images; must match
        the on-device datasets.  Height and width must be divisible by 4
        because the generator starts from a 4×-downscaled feature map.
    base_channels:
        Width of the first feature map; later stages halve it.
    """

    def __init__(self, noise_dim: int, output_shape: Tuple[int, int, int],
                 base_channels: int = 32, seed: Optional[int] = None) -> None:
        super().__init__()
        channels, height, width = (int(s) for s in output_shape)
        if height % 4 != 0 or width % 4 != 0:
            raise ValueError("generator output height/width must be divisible by 4")
        self.noise_dim = int(noise_dim)
        self.output_shape = (channels, height, width)
        self.base_channels = int(base_channels)
        init_h, init_w = height // 4, width // 4

        def seeded(offset: int) -> Optional[int]:
            return None if seed is None else seed + offset

        self.project = Sequential(
            layers.Linear(self.noise_dim, base_channels * init_h * init_w, seed=seeded(0)),
            layers.Reshape(base_channels, init_h, init_w),
            layers.BatchNorm2d(base_channels),
        )
        self.blocks = Sequential(
            layers.UpsampleNearest2d(2),
            layers.Conv2d(base_channels, base_channels, 3, padding=1, seed=seeded(1)),
            layers.BatchNorm2d(base_channels),
            layers.LeakyReLU(0.2),
            layers.UpsampleNearest2d(2),
            layers.Conv2d(base_channels, max(base_channels // 2, 4), 3, padding=1, seed=seeded(2)),
            layers.BatchNorm2d(max(base_channels // 2, 4)),
            layers.LeakyReLU(0.2),
            layers.Conv2d(max(base_channels // 2, 4), channels, 3, padding=1, seed=seeded(3)),
            layers.Tanh(),
        )

    def forward(self, z: Tensor) -> Tensor:
        if z.ndim != 2 or z.shape[1] != self.noise_dim:
            raise ValueError(f"generator expects noise of shape (N, {self.noise_dim}); got {tuple(z.shape)}")
        return self.blocks(self.project(z))

    def sample_noise(self, batch_size: int, rng: np.random.Generator) -> Tensor:
        """Draw a batch of standard-normal latent vectors."""
        return Tensor(rng.standard_normal((batch_size, self.noise_dim)))

    def generate(self, batch_size: int, rng: np.random.Generator,
                 requires_input_grad: bool = False) -> Tensor:
        """Sample noise and run the generator.

        ``requires_input_grad`` marks the noise tensor as requiring
        gradients, which is only needed by diagnostic probes; normal
        training differentiates with respect to the generator parameters.
        """
        noise = self.sample_noise(batch_size, rng)
        if requires_input_grad:
            noise.requires_grad = True
        return self.forward(noise)
