"""Common base class for on-device and server classification models.

Every classifier in the zoo exposes the same interface used by the
federated substrate and the distillation core:

* ``forward(x) -> logits`` — raw, pre-softmax scores of shape ``(N, C)``;
* ``input_shape`` / ``num_classes`` metadata;
* parameter counting (used in the resource-budget reporting of the
  compute-split ablation).
"""

from __future__ import annotations

from typing import Tuple

from ..nn.module import Module
from ..nn.tensor import Tensor

__all__ = ["ClassificationModel"]


class ClassificationModel(Module):
    """Base class for image classifiers producing logits.

    Parameters
    ----------
    input_shape:
        ``(channels, height, width)`` of the expected input images.
    num_classes:
        Number of output classes.
    """

    def __init__(self, input_shape: Tuple[int, int, int], num_classes: int) -> None:
        super().__init__()
        if len(input_shape) != 3:
            raise ValueError("input_shape must be (channels, height, width)")
        if num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        self.input_shape = tuple(int(s) for s in input_shape)
        self.num_classes = int(num_classes)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def validate_input(self, x: Tensor) -> None:
        """Raise a descriptive error if ``x`` does not match ``input_shape``."""
        if x.ndim != 4 or tuple(x.shape[1:]) != self.input_shape:
            raise ValueError(
                f"{self.__class__.__name__} expects inputs of shape (N, {self.input_shape[0]}, "
                f"{self.input_shape[1]}, {self.input_shape[2]}); got {tuple(x.shape)}"
            )

    def describe(self) -> str:
        """One-line human-readable description used in experiment logs."""
        return (
            f"{self.__class__.__name__}(input={self.input_shape}, classes={self.num_classes}, "
            f"params={self.num_parameters()})"
        )
