"""ShuffleNetV2-style compact classifier (Models A and B of Table V).

A faithful-at-small-scale rendition of the ShuffleNetV2 building blocks:
channel split, pointwise convolutions, depthwise 3×3 convolutions, channel
concatenation, and channel shuffle.  The ``net_size`` multiplier scales
stage widths exactly like the paper's "net size 0.5 / 1.0" variants.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..nn import conv as conv_ops
from ..nn import layers
from ..nn.module import Module, ModuleList, Sequential
from ..nn.tensor import Tensor, concatenate
from .base import ClassificationModel

__all__ = ["ShuffleNetV2", "ShuffleUnit"]


class ShuffleUnit(Module):
    """Basic ShuffleNetV2 unit.

    For ``stride == 1`` the input channels are split in half: one half is
    passed through untouched, the other through a 1×1 → depthwise 3×3 → 1×1
    branch; the halves are concatenated and shuffled.  For ``stride == 2``
    both branches process the full input and spatial resolution is halved.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        if stride not in (1, 2):
            raise ValueError("stride must be 1 or 2")
        if out_channels % 2 != 0:
            raise ValueError("out_channels must be even (channel split)")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        branch_channels = out_channels // 2

        def seeded(offset: int) -> Optional[int]:
            return None if seed is None else seed + offset

        if stride == 1:
            if in_channels != out_channels:
                raise ValueError("stride-1 shuffle units require in_channels == out_channels")
            branch_in = in_channels // 2
        else:
            branch_in = in_channels
            # Shortcut branch used only when downsampling.
            self.shortcut = Sequential(
                layers.DepthwiseConv2d(branch_in, 3, stride=2, padding=1, seed=seeded(10)),
                layers.BatchNorm2d(branch_in),
                layers.Conv2d(branch_in, branch_channels, 1, seed=seeded(11)),
                layers.BatchNorm2d(branch_channels),
                layers.ReLU(),
            )

        self.branch = Sequential(
            layers.Conv2d(branch_in, branch_channels, 1, seed=seeded(0)),
            layers.BatchNorm2d(branch_channels),
            layers.ReLU(),
            layers.DepthwiseConv2d(branch_channels, 3, stride=stride, padding=1, seed=seeded(1)),
            layers.BatchNorm2d(branch_channels),
            layers.Conv2d(branch_channels, branch_channels, 1, seed=seeded(2)),
            layers.BatchNorm2d(branch_channels),
            layers.ReLU(),
        )

    def forward(self, x: Tensor) -> Tensor:
        if self.stride == 1:
            half = self.in_channels // 2
            passthrough = x[:, :half]
            processed = self.branch(x[:, half:])
            out = concatenate([passthrough, processed], axis=1)
        else:
            out = concatenate([self.shortcut(x), self.branch(x)], axis=1)
        return conv_ops.channel_shuffle(out, groups=2)


class ShuffleNetV2(ClassificationModel):
    """Compact ShuffleNetV2 classifier.

    Parameters
    ----------
    net_size:
        Width multiplier applied to the stage channel counts; the paper uses
        0.5 (Model A) and 1.0 (Model B).
    stage_channels:
        Base channel counts for each stage before applying ``net_size``.
    units_per_stage:
        Number of stride-1 units following the stride-2 unit in each stage.
    """

    def __init__(self, input_shape: Tuple[int, int, int], num_classes: int,
                 net_size: float = 1.0, stage_channels: Sequence[int] = (32, 64),
                 units_per_stage: int = 1, seed: Optional[int] = None) -> None:
        super().__init__(input_shape, num_classes)
        self.net_size = float(net_size)
        in_channels = self.input_shape[0]

        def seeded(offset: int) -> Optional[int]:
            return None if seed is None else seed + offset

        def scaled(channels: int) -> int:
            value = max(4, int(round(channels * self.net_size)))
            return value + (value % 2)  # keep even for the channel split

        stem_channels = scaled(16)
        self.stem = Sequential(
            layers.Conv2d(in_channels, stem_channels, 3, stride=1, padding=1, seed=seeded(0)),
            layers.BatchNorm2d(stem_channels),
            layers.ReLU(),
        )

        stages = ModuleList()
        previous = stem_channels
        for stage_index, base in enumerate(stage_channels):
            width = scaled(base)
            units = [ShuffleUnit(previous, width, stride=2, seed=seeded(100 * (stage_index + 1)))]
            for unit_index in range(units_per_stage):
                units.append(ShuffleUnit(width, width, stride=1,
                                         seed=seeded(100 * (stage_index + 1) + 10 * (unit_index + 1))))
            stages.append(Sequential(*units))
            previous = width
        self.stages = stages
        self.pool = layers.GlobalAvgPool2d()
        self.classifier = layers.Linear(previous, num_classes, seed=seeded(999))

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        out = self.stem(x)
        for stage in self.stages:
            out = stage(out)
        return self.classifier(self.pool(out))
