"""Model registry: named architectures and the paper's device-model suites.

The registry serves three needs of the experiment harness:

* build any named architecture from a :class:`ModelSpec` (name + kwargs);
* reproduce the paper's heterogeneous on-device suites — Models A–E for
  CIFAR-10 (Table V) and the CNN / FC / three-LeNet suite for the small
  datasets — assigning a model to each device in round-robin order exactly
  like Table III (device 1..10 cycles A..E);
* build the server-side global model and generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .base import ClassificationModel
from .generator import Generator
from .mobilenet import MobileNetV2
from .shufflenet import ShuffleNetV2
from .simple import FullyConnected, LeNet, SimpleCNN

__all__ = [
    "ModelSpec",
    "build_model",
    "build_generator",
    "build_global_model",
    "available_architectures",
    "cifar_device_suite",
    "small_image_device_suite",
    "device_suite_for_family",
    "GLOBAL_MODEL_SPEC",
]


@dataclass(frozen=True)
class ModelSpec:
    """Declarative description of a model: architecture name plus keyword arguments."""

    architecture: str
    kwargs: Dict[str, object] = field(default_factory=dict)
    label: str = ""

    def describe(self) -> str:
        """Human-readable one-liner (used in Table III / Fig. 5 reporting)."""
        name = self.label or self.architecture
        if not self.kwargs:
            return name
        args = ", ".join(f"{key}={value}" for key, value in sorted(self.kwargs.items()))
        return f"{name}({args})"


_BUILDERS: Dict[str, Callable[..., ClassificationModel]] = {
    "fc": FullyConnected,
    "cnn": SimpleCNN,
    "lenet": LeNet,
    "shufflenetv2": ShuffleNetV2,
    "mobilenetv2": MobileNetV2,
}


def available_architectures() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(spec: ModelSpec, input_shape: Sequence[int], num_classes: int,
                seed: Optional[int] = None) -> ClassificationModel:
    """Instantiate the architecture described by ``spec``."""
    name = spec.architecture.lower()
    if name not in _BUILDERS:
        raise KeyError(f"unknown architecture {spec.architecture!r}; available: {available_architectures()}")
    builder = _BUILDERS[name]
    return builder(tuple(input_shape), num_classes, seed=seed, **spec.kwargs)


# --------------------------------------------------------------------------- #
# Paper device suites
# --------------------------------------------------------------------------- #

#: Models A–E for CIFAR-10 (Table V of the paper): two ShuffleNetV2 variants,
#: two MobileNetV2 variants, and a LeNet-like model.
CIFAR_MODEL_SPECS: Tuple[ModelSpec, ...] = (
    ModelSpec("shufflenetv2", {"net_size": 0.5}, label="Model A (ShuffleNetV2 x0.5)"),
    ModelSpec("shufflenetv2", {"net_size": 1.0}, label="Model B (ShuffleNetV2 x1.0)"),
    ModelSpec("mobilenetv2", {"width_multiplier": 0.8}, label="Model C (MobileNetV2 x0.8)"),
    ModelSpec("mobilenetv2", {"width_multiplier": 0.6}, label="Model D (MobileNetV2 x0.6)"),
    ModelSpec("lenet", {}, label="Model E (LeNet)"),
)

#: The suite for MNIST / KMNIST / FASHION: a CNN, a fully-connected model,
#: and three LeNet-like models with different channel sizes and depths.
SMALL_IMAGE_MODEL_SPECS: Tuple[ModelSpec, ...] = (
    ModelSpec("cnn", {"channels": (16, 32)}, label="CNN"),
    ModelSpec("fc", {"hidden_sizes": (128, 64)}, label="FC"),
    ModelSpec("lenet", {"conv_channels": (4, 8), "fc_sizes": (32,)}, label="LeNet-S"),
    ModelSpec("lenet", {"conv_channels": (6, 16), "fc_sizes": (64, 32)}, label="LeNet-M"),
    ModelSpec("lenet", {"conv_channels": (8, 24), "fc_sizes": (96, 48)}, label="LeNet-L"),
)

#: Architecture of the server-side global model: a wider CNN than any
#: on-device model (the server is assumed to be resource-rich).
GLOBAL_MODEL_SPEC = ModelSpec("cnn", {"channels": (32, 64), "hidden_size": 128}, label="GlobalCNN")


def cifar_device_suite(num_devices: int, input_shape: Sequence[int], num_classes: int,
                       seed: int = 0) -> List[ClassificationModel]:
    """Build ``num_devices`` heterogeneous models cycling through Models A–E."""
    return _build_suite(CIFAR_MODEL_SPECS, num_devices, input_shape, num_classes, seed)


def small_image_device_suite(num_devices: int, input_shape: Sequence[int], num_classes: int,
                             seed: int = 0) -> List[ClassificationModel]:
    """Build ``num_devices`` heterogeneous models for the small image datasets."""
    return _build_suite(SMALL_IMAGE_MODEL_SPECS, num_devices, input_shape, num_classes, seed)


def device_suite_for_family(family: str, num_devices: int, input_shape: Sequence[int],
                            num_classes: int, seed: int = 0) -> List[ClassificationModel]:
    """Build the device suite matching a dataset family (``cifar`` or ``small``)."""
    family = family.lower()
    if family == "cifar":
        return cifar_device_suite(num_devices, input_shape, num_classes, seed)
    if family in ("small", "mnist", "kmnist", "fashion"):
        return small_image_device_suite(num_devices, input_shape, num_classes, seed)
    raise KeyError(f"unknown dataset family {family!r}; expected 'cifar' or 'small'")


def device_specs_for_family(family: str, num_devices: int) -> List[ModelSpec]:
    """Return the cycled :class:`ModelSpec` list without instantiating models."""
    family = family.lower()
    specs = CIFAR_MODEL_SPECS if family == "cifar" else SMALL_IMAGE_MODEL_SPECS
    return [specs[index % len(specs)] for index in range(num_devices)]


def _build_suite(specs: Sequence[ModelSpec], num_devices: int, input_shape: Sequence[int],
                 num_classes: int, seed: int) -> List[ClassificationModel]:
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")
    models: List[ClassificationModel] = []
    for index in range(num_devices):
        spec = specs[index % len(specs)]
        models.append(build_model(spec, input_shape, num_classes, seed=seed + 31 * index))
    return models


def build_global_model(input_shape: Sequence[int], num_classes: int,
                       seed: Optional[int] = None,
                       spec: ModelSpec = GLOBAL_MODEL_SPEC) -> ClassificationModel:
    """Instantiate the server-side global model ``F``."""
    return build_model(spec, input_shape, num_classes, seed=seed)


def build_generator(input_shape: Sequence[int], noise_dim: int = 64,
                    base_channels: int = 32, seed: Optional[int] = None) -> Generator:
    """Instantiate the server-side generator ``G`` matching the image shape."""
    return Generator(noise_dim, tuple(input_shape), base_channels=base_channels, seed=seed)
