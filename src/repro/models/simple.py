"""Compact fully-connected, CNN, and LeNet-like classifiers.

These are the on-device architectures the paper uses for the small image
datasets (MNIST, KMNIST, FASHION): one CNN model, one fully-connected
model, and three LeNet-like models with different channel sizes and numbers
of layers.  ``LeNet`` is also Model E for CIFAR-10 (Table V).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..nn import layers
from ..nn.module import Sequential
from ..nn.tensor import Tensor
from .base import ClassificationModel

__all__ = ["FullyConnected", "SimpleCNN", "LeNet"]


def _pooled_size(size: int, times: int) -> int:
    """Spatial size after ``times`` applications of a stride-2 pool."""
    for _ in range(times):
        size //= 2
    return size


class FullyConnected(ClassificationModel):
    """Multi-layer perceptron over flattened pixels.

    The smallest-footprint on-device model; suitable for MCU-class devices
    the paper's introduction motivates.
    """

    def __init__(self, input_shape: Tuple[int, int, int], num_classes: int,
                 hidden_sizes: Sequence[int] = (128, 64), seed: Optional[int] = None) -> None:
        super().__init__(input_shape, num_classes)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        channels, height, width = self.input_shape
        in_features = channels * height * width
        blocks = [layers.Flatten()]
        previous = in_features
        for index, hidden in enumerate(self.hidden_sizes):
            blocks.append(layers.Linear(previous, hidden, seed=None if seed is None else seed + index))
            blocks.append(layers.ReLU())
            previous = hidden
        blocks.append(layers.Linear(previous, num_classes,
                                    seed=None if seed is None else seed + len(self.hidden_sizes)))
        self.network = Sequential(*blocks)

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        return self.network(x)

    def fusion_layers(self):
        return list(self.network)


class SimpleCNN(ClassificationModel):
    """Conv/batch-norm/pool stages followed by a small fully-connected head.

    Parameters
    ----------
    channels:
        Output channels of each conv stage; each stage halves the spatial
        resolution with a max-pool.
    hidden_size:
        Width of the hidden fully-connected layer before the logits.
    dropout:
        Probability of the inverted-dropout layer between the hidden layer
        and the logits; 0 (the default) omits the layer entirely.
    """

    def __init__(self, input_shape: Tuple[int, int, int], num_classes: int,
                 channels: Sequence[int] = (16, 32), hidden_size: int = 64,
                 dropout: float = 0.0, seed: Optional[int] = None) -> None:
        super().__init__(input_shape, num_classes)
        self.channels = tuple(int(c) for c in channels)
        self.hidden_size = int(hidden_size)
        self.dropout = float(dropout)
        in_channels, height, width = self.input_shape
        blocks = []
        previous = in_channels
        for index, width_c in enumerate(self.channels):
            blocks.extend([
                layers.Conv2d(previous, width_c, 3, padding=1,
                              seed=None if seed is None else seed + index),
                layers.BatchNorm2d(width_c),
                layers.ReLU(),
                layers.MaxPool2d(2),
            ])
            previous = width_c
        self.features = Sequential(*blocks)
        out_h = _pooled_size(height, len(self.channels))
        out_w = _pooled_size(width, len(self.channels))
        if out_h == 0 or out_w == 0:
            raise ValueError("input spatial size too small for the number of conv stages")
        head = [
            layers.Flatten(),
            layers.Linear(previous * out_h * out_w, self.hidden_size,
                          seed=None if seed is None else seed + 100),
            layers.ReLU(),
        ]
        if self.dropout > 0.0:
            head.append(layers.Dropout(self.dropout,
                                       seed=None if seed is None else seed + 300))
        head.append(layers.Linear(self.hidden_size, num_classes,
                                  seed=None if seed is None else seed + 200))
        self.classifier = Sequential(*head)

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        return self.classifier(self.features(x))

    def fusion_layers(self):
        return list(self.features) + list(self.classifier)


class LeNet(ClassificationModel):
    """LeNet-like network: two conv/pool stages followed by fully-connected layers.

    ``conv_channels`` and ``fc_sizes`` control the channel sizes and the
    number of layers, which is how the paper derives its three LeNet
    variants for the small datasets; the default configuration is Model E
    of Table V (CIFAR-10).
    """

    def __init__(self, input_shape: Tuple[int, int, int], num_classes: int,
                 conv_channels: Sequence[int] = (6, 16), fc_sizes: Sequence[int] = (120, 84),
                 seed: Optional[int] = None) -> None:
        super().__init__(input_shape, num_classes)
        self.conv_channels = tuple(int(c) for c in conv_channels)
        self.fc_sizes = tuple(int(f) for f in fc_sizes)
        channels, height, width = self.input_shape

        feature_blocks = []
        previous = channels
        for index, out_channels in enumerate(self.conv_channels):
            feature_blocks.extend([
                layers.Conv2d(previous, out_channels, 3, padding=1,
                              seed=None if seed is None else seed + index),
                layers.ReLU(),
                layers.MaxPool2d(2),
            ])
            previous = out_channels
        self.features = Sequential(*feature_blocks)

        out_h = _pooled_size(height, len(self.conv_channels))
        out_w = _pooled_size(width, len(self.conv_channels))
        if out_h == 0 or out_w == 0:
            raise ValueError("input spatial size too small for the number of pooling stages")
        flat = previous * out_h * out_w

        fc_blocks = [layers.Flatten()]
        previous = flat
        for index, size in enumerate(self.fc_sizes):
            fc_blocks.append(layers.Linear(previous, size,
                                           seed=None if seed is None else seed + 100 + index))
            fc_blocks.append(layers.ReLU())
            previous = size
        fc_blocks.append(layers.Linear(previous, num_classes,
                                       seed=None if seed is None else seed + 200))
        self.classifier = Sequential(*fc_blocks)

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        return self.classifier(self.features(x))

    def fusion_layers(self):
        return list(self.features) + list(self.classifier)
