"""``repro.models`` — the on-device model zoo and the server-side generator.

Architectures match the families used in the paper's evaluation:
ShuffleNetV2- and MobileNetV2-style compact networks (Models A–D),
LeNet-like networks (Model E and the small-dataset variants), a simple CNN,
and a fully-connected model, plus the DCGAN-style generator the server
trains adversarially for zero-shot distillation.
"""

from .base import ClassificationModel
from .generator import Generator
from .mobilenet import InvertedResidual, MobileNetV2
from .registry import (
    CIFAR_MODEL_SPECS,
    GLOBAL_MODEL_SPEC,
    SMALL_IMAGE_MODEL_SPECS,
    ModelSpec,
    available_architectures,
    build_generator,
    build_global_model,
    build_model,
    cifar_device_suite,
    device_specs_for_family,
    device_suite_for_family,
    small_image_device_suite,
)
from .shufflenet import ShuffleNetV2, ShuffleUnit
from .simple import FullyConnected, LeNet, SimpleCNN

__all__ = [
    "ClassificationModel",
    "Generator",
    "FullyConnected",
    "SimpleCNN",
    "LeNet",
    "ShuffleNetV2",
    "ShuffleUnit",
    "MobileNetV2",
    "InvertedResidual",
    "ModelSpec",
    "build_model",
    "build_generator",
    "build_global_model",
    "available_architectures",
    "cifar_device_suite",
    "small_image_device_suite",
    "device_suite_for_family",
    "device_specs_for_family",
    "CIFAR_MODEL_SPECS",
    "SMALL_IMAGE_MODEL_SPECS",
    "GLOBAL_MODEL_SPEC",
]
