"""FedZKT reproduction library.

Top-level package for the reproduction of *FedZKT: Zero-Shot Knowledge
Transfer towards Resource-Constrained Federated Learning with Heterogeneous
On-Device Models* (ICDCS 2022).

Subpackages
-----------
``repro.nn``
    Numpy-backed autograd, layers, optimizers, and losses.
``repro.models``
    The on-device model zoo (Models A–E) and the server-side generator.
``repro.datasets``
    Synthetic stand-ins for MNIST / KMNIST / FASHION / CIFAR-10 /
    CIFAR-100 / SVHN with the paper's interfaces.
``repro.partition``
    IID and non-IID (quantity-skew, Dirichlet) data partitioners.
``repro.federated``
    Federated-learning substrate: devices, server, sampling, simulation.
``repro.core``
    The FedZKT algorithm (zero-shot bidirectional knowledge transfer).
``repro.baselines``
    FedMD, FedAvg, FedProx, and standalone lower/upper bounds.
``repro.experiments``
    Configurations and runners reproducing every table and figure.
"""

def _detect_version() -> str:
    """Resolve the package version with ``pyproject.toml`` as single source.

    A source checkout (the common case for this repo: ``PYTHONPATH=src``)
    reads the version straight out of the adjacent ``pyproject.toml``;
    otherwise the installed distribution metadata is consulted.
    """
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    if pyproject.is_file():
        text = pyproject.read_text(encoding="utf-8")
        # Only trust the file if it is actually this package's pyproject
        # (a vendored copy could sit under an unrelated project root).
        if re.search(r'^name\s*=\s*"repro-fedzkt"', text, flags=re.MULTILINE):
            match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
            if match:
                return match.group(1)
    try:
        from importlib.metadata import PackageNotFoundError, version
        try:
            return version("repro-fedzkt")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover — importlib.metadata ships with 3.8+
        pass
    return "0.0.0+unknown"


__version__ = _detect_version()

__all__ = ["__version__"]
