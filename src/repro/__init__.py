"""FedZKT reproduction library.

Top-level package for the reproduction of *FedZKT: Zero-Shot Knowledge
Transfer towards Resource-Constrained Federated Learning with Heterogeneous
On-Device Models* (ICDCS 2022).

Subpackages
-----------
``repro.nn``
    Numpy-backed autograd, layers, optimizers, and losses.
``repro.models``
    The on-device model zoo (Models A–E) and the server-side generator.
``repro.datasets``
    Synthetic stand-ins for MNIST / KMNIST / FASHION / CIFAR-10 /
    CIFAR-100 / SVHN with the paper's interfaces.
``repro.partition``
    IID and non-IID (quantity-skew, Dirichlet) data partitioners.
``repro.federated``
    Federated-learning substrate: devices, server, sampling, simulation.
``repro.core``
    The FedZKT algorithm (zero-shot bidirectional knowledge transfer).
``repro.baselines``
    FedMD, FedAvg, FedProx, and standalone lower/upper bounds.
``repro.experiments``
    Configurations and runners reproducing every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
