"""Wire protocol primitives for the multi-node transport.

Everything that crosses a socket in :mod:`repro.net` is a **length-prefixed
frame** holding one pickled message tuple — ``(op, *operands)`` requests and
``(status, *operands)`` replies.  Pickle keeps the protocol aligned with the
rest of the execution-backend stack (tasks and contexts are already pickle
payloads for the process pool); the obvious corollary is spelled out in the
docs: unpickling input is code execution, so the blob server must only talk
to trusted peers.  Bind it to localhost or a private cluster network, never
the open internet, and set a shared handshake secret
(``tcp://...?secret=TOKEN`` / ``repro worker --secret TOKEN`` /
``REPRO_NET_SECRET``) — the server then refuses every op until the
connection's ``hello`` presents the matching token, and it warns at bind
time when a non-loopback interface is served without one.

Parameter tensors do **not** travel as pickles.  They are packed one tensor
at a time with :func:`pack_tensor` (the ``.npy`` format — dtype, shape, and
memory order round-trip losslessly, which the bit-identity contract
requires) and addressed by :func:`tensor_digest`, a content digest over the
same canonical fields :func:`repro.utils.serialization.state_digest` hashes
for whole states.  Per-tensor addressing is what makes **delta-encoded
publishes** possible: re-publishing a state in which most tensors kept
their digests ships only the changed tensors plus a tiny manifest.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import socket
import struct
import time
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "send_frame",
    "recv_frame",
    "send_msg",
    "recv_msg",
    "pack_tensor",
    "unpack_tensor",
    "tensor_digest",
    "Connection",
    "parse_hostport",
]

#: Upper bound on a single frame (64 GiB) — a sanity check against reading
#: a garbage length prefix from a confused peer, not a tuning knob.
MAX_FRAME_BYTES = 64 * 1024 * 1024 * 1024

_HEADER = struct.Struct(">Q")


class FrameError(ConnectionError):
    """A malformed frame (bad length prefix) arrived on the wire."""


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def send_frame(sock: socket.socket, blob: bytes) -> None:
    """Write one length-prefixed frame."""
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame; raises ``ConnectionError`` on EOF."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound")
    return _recv_exact(sock, length)


def send_msg(sock: socket.socket, message) -> None:
    """Pickle ``message`` into one frame."""
    send_frame(sock, pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


def recv_msg(sock: socket.socket):
    """Read and unpickle one frame."""
    return pickle.loads(recv_frame(sock))


# --------------------------------------------------------------------------- #
# Tensor blobs: lossless packing + content digests
# --------------------------------------------------------------------------- #
def pack_tensor(array: np.ndarray) -> bytes:
    """Pack one array into ``.npy`` bytes (dtype/shape/order round-trip)."""
    buffer = io.BytesIO()
    np.save(buffer, np.asarray(array), allow_pickle=False)
    return buffer.getvalue()


def unpack_tensor(blob: bytes) -> np.ndarray:
    """Invert :func:`pack_tensor`."""
    return np.load(io.BytesIO(blob), allow_pickle=False)


def tensor_digest(array: np.ndarray) -> str:
    """Content digest of one tensor (dtype, shape, memory order, raw bytes).

    Deliberately name-free: the manifest binds names to digests, so two
    entries with identical content — the same layer across two model
    replicas, an unchanged tensor across rounds — share one blob.
    """
    array = np.asarray(array)
    fortran = bool(array.flags.f_contiguous and not array.flags.c_contiguous)
    digest = hashlib.sha256()
    digest.update(f"tensor:{array.dtype.str}:{array.shape}:{int(fortran)}:".encode("utf-8"))
    digest.update(array.tobytes(order="A"))
    return digest.hexdigest()


def parse_hostport(value: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (host may be empty → ``default_host``)."""
    host, sep, port_text = value.rpartition(":")
    if not sep:
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in {value!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {value!r}")
    return (host or default_host), port


# --------------------------------------------------------------------------- #
# Client-side connection with reconnect + retry/backoff
# --------------------------------------------------------------------------- #
class Connection:
    """A worker's request/response channel to the driver server.

    One socket, strictly sequential request → reply (the worker daemon is
    single-threaded, and blob fetches happen between task leases, so
    multiplexing buys nothing).  ``request`` transparently reconnects and
    retries with exponential backoff on transient socket failures — every
    server operation is idempotent (fetches are pure reads; publishes and
    result deliveries are keyed and tolerate replays), which is what makes
    blind retry safe.
    """

    def __init__(self, host: str, port: int, *, retries: int = 5,
                 backoff: float = 0.05, connect_timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.connect_timeout = float(connect_timeout)
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------ #
    def connect(self, *, patience: Optional[float] = None) -> None:
        """Open the socket, waiting up to ``patience`` seconds for the
        server to start listening (workers may come up before the driver)."""
        deadline = time.monotonic() + (patience if patience is not None
                                       else self.connect_timeout)
        delay = self.backoff
        while True:
            try:
                sock = socket.create_connection((self.host, self.port), timeout=30.0)
                sock.settimeout(None)
                self._sock = sock
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    @property
    def is_connected(self) -> bool:
        return self._sock is not None

    # ------------------------------------------------------------------ #
    def request(self, message):
        """Send one request and return its reply, retrying with backoff."""
        delay = self.backoff
        for attempt in range(self.retries):
            if self._sock is None:
                try:
                    self.connect(patience=0.0)
                except OSError:
                    if attempt == self.retries - 1:
                        raise
                    time.sleep(delay)
                    delay *= 2
                    continue
            try:
                send_msg(self._sock, message)
                return recv_msg(self._sock)
            except (ConnectionError, OSError):
                self.close()
                if attempt == self.retries - 1:
                    raise
                time.sleep(delay)
                delay *= 2
        raise ConnectionError("unreachable")  # pragma: no cover

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
