"""The remote worker daemon: ``repro worker --connect HOST:PORT``.

Runs the existing :class:`~repro.federated.backend.WorkerRuntime` (context
versioning + the byte-bounded :class:`LRUStateCache` of resolved states)
against a network :class:`WorkerChannel`: state fetches become manifest +
tensor GETs with retry/backoff, context syncs piggyback on the same
connection, and large result states are published back into the driver's
blob table so only a tiny :class:`StateRef` rides in the result pickle.

The daemon is deliberately single-threaded: one task at a time over one
:class:`~repro.net.wire.Connection`.  Parallelism comes from running more
daemons (``tcp://:PORT?workers=N`` spawns N of them), which keeps every
worker a plain OS process you can start on any machine that can reach the
driver — ``python -m repro.net.worker --connect HOST:PORT`` and nothing
else.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import traceback
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..federated.backend import (
    DEFAULT_WORKER_CACHE_BYTES,
    LRUStateCache,
    WorkerRuntime,
    _swap_runtime,
)
from ..utils.serialization import StateRef, state_digest
from .server import pack_whole_payload
from .wire import Connection, pack_tensor, parse_hostport, tensor_digest, unpack_tensor

__all__ = ["WorkerChannel", "run_worker", "main"]


def _unwrap(reply):
    """Raise the error a reply tuple carries, else return the reply."""
    if isinstance(reply, tuple) and reply and reply[0] == "error":
        _, error_type, message = reply
        if error_type == "KeyError":
            raise KeyError(message)
        raise RuntimeError(f"{error_type}: {message}")
    return reply


class WorkerChannel:
    """Network :class:`StateChannel` face of one worker connection.

    ``fetch`` resolves a state key to its manifest, then fills in tensors
    from a local digest-keyed LRU cache of decoded arrays — the worker-side
    half of delta publishing: a re-published state whose tensors mostly
    kept their digests costs one small manifest plus only the changed
    tensors on the wire.  Returned payloads are live dicts/lists (the
    runtime's ``as_state_dict`` / ``as_array_list`` coercions pass them
    through) and must be treated as read-only, same as every other channel.
    """

    def __init__(self, connection: Connection,
                 tensor_cache_bytes: int = DEFAULT_WORKER_CACHE_BYTES) -> None:
        self.connection = connection
        self._tensors = LRUStateCache(tensor_cache_bytes)
        self.tensor_hits = 0
        self.tensor_misses = 0

    # ------------------------------------------------------------------ #
    def fetch(self, key: str, count: bool = True):
        reply = _unwrap(self.connection.request(("manifest", key, bool(count))))
        _, container, entries, label = reply
        if container == "blob":
            return entries
        arrays = []
        for name, digest in entries:
            array = self._tensors.get(digest)
            if array is None:
                self.tensor_misses += 1
                tensor_reply = _unwrap(self.connection.request(
                    ("tensor", digest, bool(count), label)))
                array = unpack_tensor(tensor_reply[1])
                self._tensors.put(digest, array, array.nbytes)
            else:
                self.tensor_hits += 1
            arrays.append((name, array))
        if container == "dict":
            return {name: array for name, array in arrays}
        return [array for _, array in arrays]

    def get_context(self, have_version: int) -> Tuple[int, Optional[bytes]]:
        reply = _unwrap(self.connection.request(("context", int(have_version))))
        return reply[1], reply[2]

    def drop(self, keys: Sequence[str]) -> None:
        _unwrap(self.connection.request(("drop", list(keys))))

    def stats(self) -> Dict[str, object]:
        return {"tensor_hits": self.tensor_hits, "tensor_misses": self.tensor_misses}

    def close(self) -> None:
        self.connection.close()

    # ------------------------------------------------------------------ #
    # Result-path publishing (worker -> driver)
    # ------------------------------------------------------------------ #
    def publish_state(self, state: Dict[str, np.ndarray], key: str,
                      label: str, delta: bool) -> None:
        """Upload a state under ``key`` — delta-encoded when the server runs
        in delta mode (only tensors the table lacks travel), whole-blob
        otherwise.

        The server pins every digest the ``missing`` check sees (and every
        uploaded blob) for this connection until the ``put_manifest`` lands,
        so the three-step sequence is atomic against concurrent GC.  The one
        hole left is a mid-publish reconnect: the new connection's pins start
        empty, so a tensor verified present before the drop of the socket may
        be GCed before the manifest arrives.  The server rejects that with
        KeyError, and we simply restart the publish from the missing check.
        """
        if not delta:
            _unwrap(self.connection.request(
                ("put_manifest", key, "blob", pack_whole_payload(state), label)))
            return
        named = list(state.items())
        entries = [(name, tensor_digest(array)) for name, array in named]
        by_digest = {digest: array for (_, array), (_, digest) in zip(named, entries)}
        for attempt in range(3):
            missing = _unwrap(self.connection.request(("missing", list(by_digest))))[1]
            for digest in missing:
                _unwrap(self.connection.request(
                    ("put_tensor", digest, pack_tensor(by_digest[digest]))))
            try:
                _unwrap(self.connection.request(
                    ("put_manifest", key, "dict", entries, label)))
                return
            except KeyError:
                if attempt == 2:
                    raise


# --------------------------------------------------------------------------- #
# Result-path refs: replace large inline result states with refs
# --------------------------------------------------------------------------- #
def _ship_result(result, channel: WorkerChannel, settings: Dict, counter) -> object:
    """Publish large result state dicts and substitute :class:`StateRef`
    handles (recursing into fused-cohort result lists)."""
    if isinstance(result, (list, tuple)):
        shipped = [_ship_result(item, channel, settings, counter) for item in result]
        return type(result)(shipped)
    state = getattr(result, "state", None)
    if not isinstance(state, dict):
        return result
    nbytes = int(sum(np.asarray(value).nbytes for value in state.values()))
    if nbytes < int(settings.get("result_ref_threshold", 0)):
        return result
    # Unique key per upload: identical states across devices still share
    # tensors (the delta path dedupes those); distinct manifests keep the
    # driver's resolve-then-drop lifecycle collision-free.
    key = f"result:{state_digest(state)}:{os.getpid()}:{next(counter)}"
    channel.publish_state(state, key, "result", bool(settings.get("delta", True)))
    result.state = StateRef(key=key, round_version=0, kind="state",
                            nbytes=nbytes, label="result")
    return result


# --------------------------------------------------------------------------- #
# Daemon loop
# --------------------------------------------------------------------------- #
def run_worker(host: str, port: int, *,
               cache_bytes: int = DEFAULT_WORKER_CACHE_BYTES,
               patience: float = 30.0, quiet: bool = False,
               max_tasks: Optional[int] = None,
               secret: Optional[str] = None) -> int:
    """Connect to the driver at ``host:port`` and execute tasks until the
    driver shuts down (or the connection is lost past the retry budget).

    ``patience`` bounds the initial wait for the driver to start listening
    (workers may legitimately come up first).  ``secret`` (default: the
    ``REPRO_NET_SECRET`` environment variable) must match the driver's
    shared secret when the driver runs with one.  ``max_tasks`` exists for
    tests: exit after N completed tasks.
    """
    if secret is None:
        secret = os.environ.get("REPRO_NET_SECRET") or None
    connection = Connection(host, port)
    connection.connect(patience=patience)
    hello = {"pid": os.getpid()}
    if secret is not None:
        hello["token"] = secret
    welcome = _unwrap(connection.request(("hello", hello)))
    settings = welcome[1]
    channel = WorkerChannel(connection, tensor_cache_bytes=cache_bytes)
    runtime = WorkerRuntime(channel=channel, cache_bytes=cache_bytes)
    _swap_runtime(runtime)
    if not quiet:
        print(f"[repro-worker {os.getpid()}] connected to {host}:{port} "
              f"(delta={settings.get('delta')})", flush=True)
    import itertools

    result_counter = itertools.count()
    completed = 0
    try:
        while True:
            reply = connection.request(("task",))
            op = reply[0]
            if op == "shutdown":
                if not quiet:
                    print(f"[repro-worker {os.getpid()}] driver shut down; exiting",
                          flush=True)
                return 0
            if op == "empty":
                continue
            _, lease_id, payload = reply
            context_version, task_blob = payload
            try:
                runtime.ensure_context(context_version)
                task = pickle.loads(task_blob)
                if runtime.context is None and not getattr(task, "context_free", False):
                    raise RuntimeError(
                        "no WorkerContext installed; was the backend started "
                        "with a context before dispatching device tasks?")
                result = task.run(runtime.context)
                result = _ship_result(result, channel, settings, result_counter)
                blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            except (ConnectionError, OSError):
                raise  # transport failure: let the outer handler deal with it
            except Exception:  # noqa: BLE001 — report task failures, keep serving
                connection.request(
                    ("task_error", lease_id, traceback.format_exc()))
                continue
            connection.request(("result", lease_id, blob))
            completed += 1
            if max_tasks is not None and completed >= max_tasks:
                return 0
    except (ConnectionError, OSError) as exc:
        if not quiet:
            print(f"[repro-worker {os.getpid()}] connection lost: {exc}", flush=True)
        return 1
    finally:
        _swap_runtime(None)
        connection.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Remote worker daemon for the tcp:// execution backend.")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="driver blob-server address to connect to")
    parser.add_argument("--cache-bytes", type=int, default=DEFAULT_WORKER_CACHE_BYTES,
                        help="byte budget of the worker state/tensor caches")
    parser.add_argument("--patience", type=float, default=30.0,
                        help="seconds to wait for the driver to start listening")
    parser.add_argument("--secret", default=None,
                        help="shared secret for the driver handshake "
                             "(default: the REPRO_NET_SECRET environment variable)")
    parser.add_argument("--max-tasks", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--quiet", action="store_true", help="suppress status lines")
    args = parser.parse_args(argv)
    host, port = parse_hostport(args.connect)
    return run_worker(host, port, cache_bytes=args.cache_bytes,
                      patience=args.patience, quiet=args.quiet,
                      max_tasks=args.max_tasks, secret=args.secret)


if __name__ == "__main__":
    sys.exit(main())
