"""Driver-side state of the multi-node transport: blob table + dispatcher.

Two thread-safe objects live in the driver process and are shared between
the in-process :class:`~repro.net.server.DriverChannel` (the driver's
:class:`~repro.utils.serialization.StateChannel`) and the socket handler
threads serving remote workers:

* :class:`BlobService` — the digest-keyed blob table behind the wire.
  States are stored **delta-encoded**: a *manifest* maps entry names to
  per-tensor content digests, and tensor blobs are stored once per digest
  with reference counting (a manifest drop garbage-collects tensors no
  other manifest references).  Publishing a state in which most tensors
  kept their digests therefore ships (and stores) only the changed tensors
  plus the tiny manifest.  A non-delta mode stores whole packed blobs
  under the state key — same interface, used as the benchmark baseline.

  A delta publish is three steps (``missing_tensors`` → ``put_tensor``
  per gap → ``put_manifest``) that are **not atomic**, so the table layers
  a *pin* lease over the refcounts: a publisher passes a ``pin_for`` token
  and every digest it checked or uploaded stays alive — immune to
  concurrent ``drop`` GC — until its ``put_manifest`` lands (which
  releases the pins) or the publisher dies (:meth:`release_pins`, called
  by the server when a connection closes, reclaims orphaned refcount-0
  uploads).  ``put_manifest`` increfs the new entries *before* decrefing
  the manifest it replaces, so a replayed identical publish (the blind
  retry a lost reply produces) or an update sharing tensors with its
  predecessor never GCs the shared blobs in between.
* :class:`Dispatcher` — the driver-side task queue.  Workers *lease* tasks
  (``next_task``) and deliver results (``complete``); a lease whose
  connection dies before delivering is re-queued (``release_connection``),
  which is what turns a worker crash mid-round into a re-dispatch instead
  of a hang.  Tasks are pure functions of their payload + context (they
  load parameter state before computing), so a re-executed lease — or a
  duplicate result from a worker whose connection broke *after* computing
  — is harmless: results are keyed and deterministic.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["BlobService", "Dispatcher", "DispatchBatch", "RemoteTaskError"]


class RemoteTaskError(RuntimeError):
    """A task raised on a remote worker; carries the remote traceback."""


# --------------------------------------------------------------------------- #
# Blob table
# --------------------------------------------------------------------------- #
class BlobService:
    """The digest-keyed blob table served to workers.

    All methods are safe to call from any thread.  ``count=True`` marks
    worker-initiated transfers (cache misses) so driver-side reads never
    pollute the hit/miss statistics — the same convention the manager-based
    process-pool channel follows.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # state key -> (container, entries [(name, tensor_digest)], label,
        #               manifest_nbytes) for delta entries; container "blob"
        # stores the packed payload inline in ``entries``.
        self._manifests: Dict[str, Tuple[str, object, str, int]] = {}
        # tensor digest -> [blob, refcount, pins].  ``refcount`` counts
        # referencing manifests; ``pins`` counts in-flight publishes that
        # checked or uploaded the digest and have not landed their manifest
        # yet.  A tensor is GCed only when both reach zero.
        self._tensors: Dict[str, List] = {}
        # pin token (connection id or driver publish token) -> pinned digests
        self._pins: Dict[object, List[str]] = {}
        self._context_blob: Optional[bytes] = None
        self._context_version = -1
        self._fetches = 0
        self._fetched_bytes = 0
        self._tensor_fetches = 0
        self._context_fetches = 0
        self._context_bytes = 0
        self._uploads = 0
        self._uploaded_bytes = 0
        self._by_label: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # Publishing (driver-side direct, or worker result uploads via ops)
    # ------------------------------------------------------------------ #
    def missing_tensors(self, digests: Sequence[str],
                        pin_for: Optional[object] = None) -> List[str]:
        """The subset of ``digests`` the table does not hold yet.

        With ``pin_for``, every digest that *is* present gets pinned for
        that token: a concurrent manifest drop cannot GC it out from under
        the caller between this check and the caller's ``put_manifest``.
        """
        with self._lock:
            missing = []
            for digest in digests:
                entry = self._tensors.get(digest)
                if entry is None:
                    missing.append(digest)
                elif pin_for is not None:
                    entry[2] += 1
                    self._pins.setdefault(pin_for, []).append(digest)
            return missing

    def put_tensor(self, digest: str, blob: bytes, *, count_upload: bool = False,
                   pin_for: Optional[object] = None) -> bool:
        """Store one tensor blob; returns whether it was new.  With
        ``pin_for``, the blob is pinned until the owning ``put_manifest``
        lands (or the publisher's pins are released on disconnect)."""
        with self._lock:
            if count_upload:
                self._uploaded_bytes += len(blob)
            entry = self._tensors.get(digest)
            new = entry is None
            if new:
                # Refcount starts at 0; manifests referencing it bump it.
                entry = self._tensors[digest] = [blob, 0, 0]
            if pin_for is not None:
                entry[2] += 1
                self._pins.setdefault(pin_for, []).append(digest)
            return new

    def put_manifest(self, key: str, container: str, entries, label: str = "",
                     *, count_upload: bool = False,
                     pin_for: Optional[object] = None) -> int:
        """Bind ``key`` to a manifest (``container`` ``"dict"``/``"list"``:
        entries are ``(name, tensor_digest)`` pairs over stored tensors;
        ``"blob"``: entries is the whole packed payload).  Returns the
        manifest's wire size.  Idempotent per key (re-publishing an
        identical content key replaces an identical manifest).  Releases
        ``pin_for``'s pins whether or not the bind succeeds."""
        manifest_nbytes = (len(entries) if container == "blob" else
                           len(pickle.dumps((container, entries),
                                            protocol=pickle.HIGHEST_PROTOCOL)))
        with self._lock:
            try:
                if count_upload:
                    self._uploads += 1
                    self._uploaded_bytes += manifest_nbytes
                if container != "blob":
                    missing = [digest for _, digest in entries
                               if digest not in self._tensors]
                    if missing:
                        raise KeyError(f"manifest {key!r} references unknown tensor "
                                       f"blobs ({len(missing)} missing); publish "
                                       "tensors first")
                    # Incref the new entries BEFORE decrefing the previous
                    # manifest: a replayed identical publish, or an update
                    # sharing tensors with its predecessor, must not GC the
                    # shared blobs in between.
                    for _, digest in entries:
                        self._tensors[digest][1] += 1
                previous = self._manifests.get(key)
                if previous is not None:
                    self._decref_locked(previous)
                self._manifests[key] = (container, entries, label, manifest_nbytes)
            finally:
                if pin_for is not None:
                    self._release_pins_locked(pin_for)
        return manifest_nbytes

    def release_pins(self, pin_for: object) -> None:
        """Drop every pin held by ``pin_for``, GCing tensors nothing else
        references — the disconnect path for publishers that died between
        uploading blobs and landing their manifest."""
        with self._lock:
            self._release_pins_locked(pin_for)

    def _release_pins_locked(self, pin_for: object) -> None:
        for digest in self._pins.pop(pin_for, ()):
            entry = self._tensors.get(digest)
            if entry is None:
                continue
            entry[2] -= 1
            if entry[1] <= 0 and entry[2] <= 0:
                del self._tensors[digest]

    def _decref_locked(self, manifest: Tuple[str, object, str, int]) -> None:
        container, entries, _, _ = manifest
        if container == "blob":
            return
        for _, digest in entries:
            entry = self._tensors.get(digest)
            if entry is None:
                continue
            entry[1] -= 1
            if entry[1] <= 0 and entry[2] <= 0:
                del self._tensors[digest]

    # ------------------------------------------------------------------ #
    # Fetching
    # ------------------------------------------------------------------ #
    def get_manifest(self, key: str, count: bool = True):
        """Return ``(container, entries)``; raises ``KeyError`` if unknown."""
        with self._lock:
            manifest = self._manifests.get(key)
            if manifest is None:
                raise KeyError(f"state ref {key!r} is not in the blob table; it was "
                               "never published or was evicted before use")
            container, entries, label, manifest_nbytes = manifest
            if count:
                size = (len(entries) if container == "blob" else manifest_nbytes)
                self._fetches += 1
                self._fetched_bytes += size
                bucket = self._by_label.setdefault(
                    label, {"fetches": 0, "fetched_bytes": 0})
                bucket["fetches"] += 1
                bucket["fetched_bytes"] += size
            return container, entries

    def get_tensor(self, digest: str, count: bool = True, label: str = "") -> bytes:
        with self._lock:
            entry = self._tensors.get(digest)
            if entry is None:
                raise KeyError(f"tensor blob {digest!r} is not in the blob table")
            blob = entry[0]
            if count:
                self._tensor_fetches += 1
                self._fetched_bytes += len(blob)
                bucket = self._by_label.setdefault(
                    label, {"fetches": 0, "fetched_bytes": 0})
                bucket["fetched_bytes"] += len(blob)
            return blob

    def drop(self, keys: Sequence[str]) -> None:
        with self._lock:
            for key in keys:
                manifest = self._manifests.pop(key, None)
                if manifest is not None:
                    self._decref_locked(manifest)

    # ------------------------------------------------------------------ #
    # Worker context
    # ------------------------------------------------------------------ #
    def set_context(self, version: int, blob: bytes) -> None:
        with self._lock:
            self._context_version = int(version)
            self._context_blob = blob

    def get_context(self, have_version: int) -> Tuple[int, Optional[bytes]]:
        with self._lock:
            if have_version == self._context_version or self._context_blob is None:
                return self._context_version, None
            self._context_fetches += 1
            self._context_bytes += len(self._context_blob)
            return self._context_version, self._context_blob

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "fetches": self._fetches,
                "fetched_bytes": self._fetched_bytes,
                "tensor_fetches": self._tensor_fetches,
                "context_fetches": self._context_fetches,
                "context_bytes": self._context_bytes,
                "uploads": self._uploads,
                "uploaded_bytes": self._uploaded_bytes,
                "entries": len(self._manifests),
                "tensor_entries": len(self._tensors),
                "by_label": {label: dict(bucket)
                             for label, bucket in self._by_label.items()},
            }


# --------------------------------------------------------------------------- #
# Task dispatch
# --------------------------------------------------------------------------- #
class DispatchBatch:
    """One ``run_tasks`` call's worth of leases and their results."""

    def __init__(self, size: int, condition: threading.Condition) -> None:
        self.size = size
        self._condition = condition
        # task index -> ("ok", result) | ("error", message)
        self.outcomes: Dict[int, Tuple[str, object]] = {}
        self._yielded = 0

    @property
    def done(self) -> bool:
        return len(self.outcomes) >= self.size

    def drain_new(self) -> List[Tuple[int, Tuple[str, object]]]:
        """Outcomes not yet handed to the caller (condition must be held)."""
        if self._yielded >= len(self.outcomes):
            return []
        fresh = [(index, outcome) for index, outcome in self.outcomes.items()
                 if index >= 0]  # all indices are >= 0; keep dict order
        fresh = fresh[self._yielded:]
        self._yielded = len(self.outcomes)
        return fresh


class Dispatcher:
    """Lease-based task queue shared by the driver and its workers.

    Lifecycle of one task: ``submit`` enqueues it → a worker connection
    ``next_task``s it (the lease records the owner connection) →
    ``complete`` stores the outcome.  ``release_connection`` re-queues
    every lease whose owner died without completing.  ``shutdown`` makes
    ``next_task`` return the shutdown sentinel so workers exit cleanly.
    """

    #: Sentinels returned by :meth:`next_task`.
    EMPTY = ("empty",)
    SHUTDOWN = ("shutdown",)

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._queue: deque = deque()
        # lease id -> {batch, index, payload, owner, status}
        self._leases: Dict[int, Dict] = {}
        self._next_lease = 0
        self._shutdown = False
        self.redispatches = 0

    # ------------------------------------------------------------------ #
    # Driver side
    # ------------------------------------------------------------------ #
    def submit(self, payloads: Sequence) -> DispatchBatch:
        """Enqueue one payload per task; returns the batch to wait on."""
        with self._condition:
            if self._shutdown:
                raise RuntimeError("dispatcher is shut down")
            batch = DispatchBatch(len(payloads), self._condition)
            for index, payload in enumerate(payloads):
                lease_id = self._next_lease
                self._next_lease += 1
                self._leases[lease_id] = {"batch": batch, "index": index,
                                          "payload": payload, "owner": None,
                                          "status": "queued"}
                self._queue.append(lease_id)
            self._condition.notify_all()
            return batch

    def wait(self, batch: DispatchBatch, timeout: float) -> bool:
        """Block until the batch progresses or ``timeout`` elapses; returns
        whether the batch is complete."""
        with self._condition:
            if not batch.done:
                self._condition.wait(timeout)
            return batch.done

    def iter_outcomes(self, batch: DispatchBatch, timeout: float) -> Iterator:
        """Yield ``(index, outcome)`` pairs that arrived since the last call
        (non-blocking beyond ``timeout`` for the first new outcome)."""
        with self._condition:
            fresh = batch.drain_new()
            if not fresh and not batch.done:
                self._condition.wait(timeout)
                fresh = batch.drain_new()
        return iter(fresh)

    def pending(self, batch: DispatchBatch) -> int:
        with self._condition:
            return batch.size - len(batch.outcomes)

    # ------------------------------------------------------------------ #
    # Worker side (called from socket handler threads)
    # ------------------------------------------------------------------ #
    def next_task(self, connection_id: int, timeout: float = 1.0):
        """Lease the next queued task to ``connection_id``.

        Returns ``(lease_id, payload)``, :data:`EMPTY` after ``timeout``
        with nothing queued, or :data:`SHUTDOWN` once shut down.
        """
        with self._condition:
            if not self._queue and not self._shutdown:
                self._condition.wait(timeout)
            while self._queue:
                lease_id = self._queue.popleft()
                lease = self._leases.get(lease_id)
                if lease is None or lease["status"] == "done":
                    continue  # completed by a duplicate delivery meanwhile
                lease["owner"] = connection_id
                lease["status"] = "leased"
                return lease_id, lease["payload"]
            if self._shutdown:
                return self.SHUTDOWN
            return self.EMPTY

    def complete(self, lease_id: int, ok: bool, result) -> None:
        """Store a lease's outcome (tolerates re-queued duplicates)."""
        with self._condition:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return
            lease["status"] = "done"
            batch: DispatchBatch = lease["batch"]
            if lease["index"] not in batch.outcomes:
                batch.outcomes[lease["index"]] = ("ok" if ok else "error", result)
            self._condition.notify_all()

    def release_connection(self, connection_id: int) -> int:
        """Re-queue every lease the dead connection still owned; returns the
        number of re-dispatched tasks."""
        with self._condition:
            requeued = 0
            for lease_id, lease in self._leases.items():
                if lease["owner"] == connection_id and lease["status"] == "leased":
                    lease["owner"] = None
                    lease["status"] = "queued"
                    self._queue.append(lease_id)
                    requeued += 1
            if requeued:
                self.redispatches += requeued
                self._condition.notify_all()
            return requeued

    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        with self._condition:
            self._shutdown = True
            self._condition.notify_all()

    @property
    def is_shut_down(self) -> bool:
        with self._condition:
            return self._shutdown
