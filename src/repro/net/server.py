"""The driver's TCP endpoint: blob server + task feed, and its local channel.

:class:`BlobServer` is a threaded stdlib ``socketserver`` speaking the
length-prefixed message protocol of :mod:`repro.net.wire`.  Each worker
connection is one handler thread running a request/reply loop against the
shared :class:`~repro.net.service.BlobService` (manifests + tensor blobs +
worker context) and :class:`~repro.net.service.Dispatcher` (task leases).
A connection that drops — worker crash, network partition — releases its
leases on the way out, so its in-flight tasks are re-dispatched to the
surviving workers instead of hanging the round.

:class:`DriverChannel` is the driver-side
:class:`~repro.utils.serialization.StateChannel` over the *same* service
object, no sockets involved.  In delta mode it advertises
``accepts_objects`` so the :class:`~repro.utils.serialization.StateStore`
hands it live state dicts, which it decomposes into per-tensor blobs keyed
by content digest: publishing a state whose tensors mostly kept their
digests stores (and later ships) only the changed tensors plus a small
manifest.  ``publish`` returns the wire-equivalent byte count so the
store's ``published_bytes`` reflects delta savings.
"""

from __future__ import annotations

import itertools
import pickle
import socketserver
import threading
import warnings
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..utils.serialization import pack_array_list, pack_state_dict
from .service import BlobService, Dispatcher
from .wire import pack_tensor, recv_msg, send_msg, tensor_digest, unpack_tensor

__all__ = ["BlobServer", "DriverChannel", "serve_in_thread"]

#: Results whose state payload is at least this large come back as refs
#: (the worker publishes the state into the blob table and ships a
#: :class:`StateRef` instead of inline bytes).
DEFAULT_RESULT_REF_THRESHOLD = 1 * 1024 * 1024


def _is_loopback(host: str) -> bool:
    return host in ("127.0.0.1", "localhost", "::1") or host.startswith("127.")


# --------------------------------------------------------------------------- #
# Driver-side channel (in-process; serves the StateStore seam)
# --------------------------------------------------------------------------- #
class DriverChannel:
    """The RemoteBackend's :class:`StateChannel` over the shared service.

    Delta mode (the default) sets ``accepts_objects`` so the store skips
    npz packing and ``publish`` receives live dicts/lists; non-delta mode
    receives packed blobs and stores them whole — the benchmark baseline.
    """

    def __init__(self, service: BlobService, delta: bool = True) -> None:
        self._service = service
        self.delta = bool(delta)
        #: Consulted by :class:`StateStore`: live objects wanted, not npz.
        self.accepts_objects = self.delta
        self._publish_tokens = itertools.count()

    # ------------------------------------------------------------------ #
    def publish(self, key: str, payload, label: str = "") -> int:
        """Store ``payload`` under ``key``; returns wire-equivalent bytes
        (new tensor blobs + manifest for delta publishes, blob size
        otherwise) for the store's ``published_bytes`` accounting."""
        if isinstance(payload, bytes):
            return self._service.put_manifest(key, "blob", payload, label)
        if isinstance(payload, dict):
            container = "dict"
            named = list(payload.items())
        else:
            container = "list"
            named = [(str(index), array) for index, array in enumerate(payload)]
        entries = [(name, tensor_digest(array)) for name, array in named]
        new_bytes = 0
        by_digest = {digest: array for (_, array), (_, digest) in zip(named, entries)}
        # Pin across the check → upload → bind sequence so a concurrent drop
        # (another handler thread serving a worker's "drop") cannot GC a
        # tensor this publish verified present.  put_manifest releases.
        token = ("driver-publish", next(self._publish_tokens))
        try:
            for digest in self._service.missing_tensors(list(by_digest), pin_for=token):
                blob = pack_tensor(by_digest[digest])
                if self._service.put_tensor(digest, blob, pin_for=token):
                    new_bytes += len(blob)
            manifest_bytes = self._service.put_manifest(key, container, entries, label,
                                                        pin_for=token)
        except BaseException:
            self._service.release_pins(token)
            raise
        return new_bytes + manifest_bytes

    def fetch(self, key: str, count: bool = True):
        """Materialize ``key`` driver-side: packed bytes for blob entries,
        an assembled live dict/list for delta entries."""
        container, entries = self._service.get_manifest(key, count=count)
        if container == "blob":
            return entries
        arrays = [(name, unpack_tensor(self._service.get_tensor(digest, count=count)))
                  for name, digest in entries]
        if container == "dict":
            return {name: array for name, array in arrays}
        return [array for _, array in arrays]

    def drop(self, keys: Sequence[str]) -> None:
        self._service.drop(list(keys))

    def stats(self) -> Dict[str, object]:
        return self._service.stats()

    def close(self) -> None:  # the service lives in-process; nothing to release
        pass


# --------------------------------------------------------------------------- #
# The TCP server
# --------------------------------------------------------------------------- #
class _WorkerHandler(socketserver.BaseRequestHandler):
    """One worker connection: a sequential request/reply loop."""

    def handle(self) -> None:
        server: "BlobServer" = self.server  # type: ignore[assignment]
        connection_id = next(server.connection_ids)
        registered = False
        authenticated = server.secret is None
        try:
            while not server.closing:
                try:
                    message = recv_msg(self.request)
                except (ConnectionError, OSError):
                    break
                if not authenticated and message[0] != "hello":
                    self._refuse("unauthenticated connection; send hello with "
                                 "the shared secret first")
                    break
                if message[0] == "hello" and server.secret is not None:
                    info = message[1] if len(message) > 1 and isinstance(message[1], dict) else {}
                    if info.get("token") != server.secret:
                        self._refuse("hello token does not match the server's "
                                     "shared secret")
                        break
                    authenticated = True
                try:
                    reply = self._dispatch(server, connection_id, message)
                except KeyError as exc:
                    reply = ("error", "KeyError", str(exc))
                except Exception as exc:  # noqa: BLE001 — reply, don't kill the loop
                    reply = ("error", type(exc).__name__, str(exc))
                if message[0] == "hello" and not registered:
                    registered = True
                    with server.lock:
                        server.counters["connections_total"] += 1
                        server.counters["workers_connected"] += 1
                try:
                    send_msg(self.request, reply)
                except (ConnectionError, OSError):
                    break
        finally:
            # Reclaim blobs this connection uploaded but never bound to a
            # manifest (death between put_tensor and put_manifest), then
            # requeue its unfinished task leases.
            server.service.release_pins(connection_id)
            requeued = server.dispatcher.release_connection(connection_id)
            with server.lock:
                if registered:
                    server.counters["workers_connected"] -= 1
                    server.counters["disconnects"] += 1
                if requeued:
                    server.counters["tasks_requeued"] += requeued

    # ------------------------------------------------------------------ #
    def _refuse(self, reason: str) -> None:
        try:
            send_msg(self.request, ("error", "AuthError", reason))
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------ #
    def _dispatch(self, server: "BlobServer", connection_id: int, message):
        service = server.service
        dispatcher = server.dispatcher
        op = message[0]
        if op == "task":
            leased = dispatcher.next_task(connection_id, timeout=server.task_poll_seconds)
            if leased == Dispatcher.SHUTDOWN or leased == Dispatcher.EMPTY:
                return leased
            lease_id, payload = leased
            return ("task", lease_id, payload)
        if op == "result":
            _, lease_id, blob = message
            with server.lock:
                server.counters["results_received"] += 1
                server.counters["result_bytes"] += len(blob)
            dispatcher.complete(lease_id, True, pickle.loads(blob))
            return ("ok",)
        if op == "task_error":
            _, lease_id, text = message
            dispatcher.complete(lease_id, False, text)
            return ("ok",)
        if op == "manifest":
            _, key, count = message
            container, entries = service.get_manifest(key, count=count)
            label = server.manifest_label(key)
            return ("manifest", container, entries, label)
        if op == "tensor":
            _, digest, count, label = message
            return ("tensor", service.get_tensor(digest, count=count, label=label))
        if op == "missing":
            # Pin present digests for this connection: its follow-up
            # put_manifest (or its disconnect) releases them, so a driver
            # drop between the check and the bind cannot GC them.
            return ("missing", service.missing_tensors(message[1],
                                                       pin_for=connection_id))
        if op == "put_tensor":
            _, digest, blob = message
            service.put_tensor(digest, blob, count_upload=True, pin_for=connection_id)
            return ("ok",)
        if op == "put_manifest":
            _, key, container, entries, label = message
            service.put_manifest(key, container, entries, label, count_upload=True,
                                 pin_for=connection_id)
            return ("ok",)
        if op == "drop":
            service.drop(message[1])
            return ("ok",)
        if op == "context":
            version, blob = service.get_context(message[1])
            return ("context", version, blob)
        if op == "hello":
            return ("welcome", dict(server.settings))
        if op == "stats":
            return ("stats", service.stats())
        if op == "ping":
            return ("ok",)
        raise ValueError(f"unknown wire op {op!r}")


class BlobServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wiring worker connections to the shared state."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: BlobService,
                 dispatcher: Dispatcher, *, delta: bool = True,
                 result_ref_threshold: int = DEFAULT_RESULT_REF_THRESHOLD,
                 task_poll_seconds: float = 1.0,
                 secret: Optional[str] = None) -> None:
        super().__init__(address, _WorkerHandler)
        self.service = service
        self.dispatcher = dispatcher
        self.secret = secret
        if secret is None and not _is_loopback(address[0]):
            warnings.warn(
                f"repro.net blob server binding non-loopback interface "
                f"{address[0]!r} without a shared secret: the wire protocol "
                "deserializes pickles, so anything that can reach the port can "
                "execute code in the driver.  Pass a secret (tcp://...?secret=... "
                "or REPRO_NET_SECRET) or bind a private interface.",
                RuntimeWarning, stacklevel=2)
        self.task_poll_seconds = float(task_poll_seconds)
        self.settings = {"delta": bool(delta),
                         "result_ref_threshold": int(result_ref_threshold)}
        self.connection_ids = itertools.count(1)
        self.lock = threading.Lock()
        self.closing = False
        self.counters: Dict[str, int] = {
            "connections_total": 0, "workers_connected": 0, "disconnects": 0,
            "tasks_requeued": 0, "results_received": 0, "result_bytes": 0,
        }

    @property
    def port(self) -> int:
        return self.server_address[1]

    def manifest_label(self, key: str) -> str:
        """The label a manifest was published under (for tensor accounting)."""
        with self.service._lock:
            manifest = self.service._manifests.get(key)
            return manifest[2] if manifest is not None else ""

    def counter_snapshot(self) -> Dict[str, int]:
        with self.lock:
            return dict(self.counters)

    def close(self) -> None:
        self.closing = True
        self.shutdown()
        self.server_close()


def serve_in_thread(server: BlobServer) -> threading.Thread:
    """Run ``server.serve_forever`` on a daemon thread; returns the thread."""
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.1},
                              name="repro-blob-server", daemon=True)
    thread.start()
    return thread


# --------------------------------------------------------------------------- #
# Worker-side publish helper (shared with repro.net.worker)
# --------------------------------------------------------------------------- #
def pack_whole_payload(payload) -> bytes:
    """Pack a live dict/list to the npz wire format (non-delta publishes)."""
    if isinstance(payload, bytes):
        return payload
    if isinstance(payload, dict):
        return pack_state_dict(payload)
    return pack_array_list([np.asarray(array) for array in payload])
