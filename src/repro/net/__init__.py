"""``repro.net`` — multi-node execution over the ``StateChannel`` seam.

A digest-keyed blob server hosted by the driver (:mod:`repro.net.server`),
a remote worker daemon (:mod:`repro.net.worker`, ``repro worker --connect``)
running the existing worker runtime against a network channel, and the
``tcp://`` :class:`~repro.net.backend.RemoteBackend` tying them into the
execution-backend seam — same tasks, same content-addressed transport,
bit-identical histories.
"""

from .backend import RemoteBackend, make_tcp_backend
from .server import BlobServer, DriverChannel
from .service import BlobService, DispatchBatch, Dispatcher, RemoteTaskError
from .wire import Connection, pack_tensor, parse_hostport, tensor_digest, unpack_tensor

# NOTE: repro.net.worker is intentionally NOT imported here — the worker
# daemon is launched as ``python -m repro.net.worker`` and importing it from
# the package __init__ would shadow that runpy entry point.

__all__ = [
    "RemoteBackend",
    "make_tcp_backend",
    "BlobServer",
    "DriverChannel",
    "BlobService",
    "Dispatcher",
    "DispatchBatch",
    "RemoteTaskError",
    "Connection",
    "pack_tensor",
    "unpack_tensor",
    "tensor_digest",
    "parse_hostport",
]
