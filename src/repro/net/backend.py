"""The ``tcp://`` execution backend: driver-hosted server + remote workers.

``RemoteBackend`` implements the :class:`~repro.federated.backend.ExecutionBackend`
seam over :mod:`repro.net`: the driver binds the blob server
(:class:`~repro.net.server.BlobServer`) and publishes states/contexts into
the shared :class:`~repro.net.service.BlobService`; workers — spawned
localhost daemons (``tcp://:PORT?workers=N``) or externally started
``repro worker --connect HOST:PORT`` processes on other machines — lease
pickled tasks from the :class:`~repro.net.service.Dispatcher` and push
results back.  Parity is the house invariant: tasks, payload packing, and
result routing are byte-for-byte the process-pool protocol, so histories
are bit-identical to ``serial``.

Failure model: a worker that disconnects mid-round has its leased tasks
re-queued by the server (tasks are pure functions of payload + context, so
re-execution — or a duplicate result from a half-dead worker — is
harmless); spawned workers that die are respawned up to
``max_worker_restarts`` times, after which ``run_tasks`` raises instead of
hanging.

Spec grammar (``make_tcp_backend``)::

    tcp://HOST:PORT              bind HOST:PORT, wait for external workers
    tcp://:PORT?workers=N        bind PORT (0 = ephemeral), spawn N local workers
    ...&delta=0                  disable delta-encoded publishes (benchmark baseline)
    ...&refs=BYTES               result-ref threshold (default 1 MiB)
    ...&cache=BYTES              worker cache budget
    ...&secret=TOKEN             shared handshake secret workers must present
                                 (default: the REPRO_NET_SECRET env var)
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar
from urllib.parse import parse_qs, urlsplit

from ..federated.backend import (
    DEFAULT_WORKER_CACHE_BYTES,
    ExecutionBackend,
)
from ..utils.serialization import StateRef, StateStore, as_state_dict
from .server import (
    DEFAULT_RESULT_REF_THRESHOLD,
    BlobServer,
    DriverChannel,
    serve_in_thread,
)
from .service import BlobService, Dispatcher, RemoteTaskError

__all__ = ["RemoteBackend", "make_tcp_backend"]

T = TypeVar("T")
R = TypeVar("R")


class _MapCall:
    """Picklable wrapper turning ``backend.map`` items into context-free tasks."""

    context_free = True

    def __init__(self, fn: Callable, item) -> None:
        self.fn = fn
        self.item = item

    def run(self, context):
        return self.fn(self.item)


class RemoteBackend(ExecutionBackend):
    """Fan tasks out across TCP-connected worker daemons.

    Parameters
    ----------
    host, port:
        Bind address of the blob server (port 0 picks an ephemeral port —
        read it back from :attr:`port` after :meth:`start`).
    workers:
        Localhost worker daemons to spawn (0 = external workers only).
    delta:
        Delta-encode publishes (per-tensor content addressing).  Off, whole
        npz blobs are stored/shipped — the measured baseline.
    result_ref_threshold:
        Result states at least this large come back as refs the driver
        resolves out of the blob table, not inline pickle bytes.
    """

    name = "tcp"
    ships_payloads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0, workers: int = 0,
                 *, delta: bool = True,
                 cache_bytes: int = DEFAULT_WORKER_CACHE_BYTES,
                 result_ref_threshold: int = DEFAULT_RESULT_REF_THRESHOLD,
                 max_worker_restarts: int = 3,
                 worker_patience: float = 30.0,
                 secret: Optional[str] = None) -> None:
        if int(workers) < 0:
            raise ValueError("workers must be >= 0")
        self.secret = secret
        self.host = host
        self.bind_port = int(port)
        self.workers = int(workers)
        self.delta = bool(delta)
        self.cache_bytes = int(cache_bytes)
        self.result_ref_threshold = int(result_ref_threshold)
        self.max_worker_restarts = int(max_worker_restarts)
        self.worker_patience = float(worker_patience)

        self._service: Optional[BlobService] = None
        self._dispatcher: Optional[Dispatcher] = None
        self._server: Optional[BlobServer] = None
        self._server_thread = None
        self._channel: Optional[DriverChannel] = None
        self.state_store: Optional[StateStore] = None
        self._context = None
        self._context_version = -1
        self._procs: List[subprocess.Popen] = []

        #: Times the server (and store) were actually created.
        self.server_starts = 0
        #: Spawned worker daemons respawned after dying.
        self.worker_restarts = 0
        self._task_bytes = 0
        self._tasks_shipped = 0
        self._context_published_bytes = 0
        self._result_refs_resolved = 0
        self._result_ref_bytes = 0
        self._closed_service_stats: Dict[str, object] = {}
        self._closed_counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    @property
    def port(self) -> Optional[int]:
        """The bound port (differs from the spec's for ephemeral binds)."""
        return self._server.port if self._server is not None else None

    def _ensure_server(self) -> None:
        if self._server is not None:
            return
        self._service = BlobService()
        self._dispatcher = Dispatcher()
        self._server = BlobServer(
            (self.host, self.bind_port), self._service, self._dispatcher,
            delta=self.delta, result_ref_threshold=self.result_ref_threshold,
            secret=self.secret)
        self._server_thread = serve_in_thread(self._server)
        self._channel = DriverChannel(self._service, delta=self.delta)
        self.state_store = StateStore(self._channel, ships=True)
        self.server_starts += 1
        for _ in range(self.workers):
            self._procs.append(self._spawn_worker())

    def _spawn_worker(self) -> subprocess.Popen:
        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (src_dir + os.pathsep + existing) if existing else src_dir
        if self.secret is not None:
            # Via the environment, not argv: command lines are world-readable.
            env["REPRO_NET_SECRET"] = self.secret
        command = [sys.executable, "-m", "repro.net.worker",
                   "--connect", f"127.0.0.1:{self._server.port}",
                   "--cache-bytes", str(self.cache_bytes),
                   "--patience", str(self.worker_patience),
                   "--quiet"]
        return subprocess.Popen(command, env=env)

    def start(self, context=None) -> None:
        if self._started and self._server is not None and context is self._context:
            return
        self._ensure_server()
        self._context_version += 1
        blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
        self._context_published_bytes += len(blob)
        self._service.set_context(self._context_version, blob)
        self._context = context
        self._started = True

    # ------------------------------------------------------------------ #
    def _monitor_workers(self) -> None:
        """Respawn dead spawned workers; raise once nothing can make progress.

        Externally connected workers make the all-spawned-workers-dead
        state survivable, so the raise only fires when the backend owns
        every worker and the respawn budget is spent.
        """
        if not self._procs:
            return
        alive = 0
        for index, proc in enumerate(self._procs):
            if proc.poll() is None:
                alive += 1
                continue
            if self.worker_restarts < self.max_worker_restarts:
                self.worker_restarts += 1
                self._procs[index] = self._spawn_worker()
                alive += 1
        if alive == 0 and self._server.counter_snapshot()["workers_connected"] == 0:
            raise RuntimeError(
                "all spawned tcp:// workers died and the restart budget "
                f"({self.max_worker_restarts}) is exhausted; aborting instead of hanging")

    def _ship(self, task) -> Tuple[int, bytes]:
        blob = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        self._task_bytes += len(blob)
        self._tasks_shipped += 1
        return (self._context_version, blob)

    def _materialize(self, outcome: Tuple[str, object]):
        status, value = outcome
        if status != "ok":
            raise RemoteTaskError(f"task failed on a remote worker:\n{value}")
        return self._resolve_result_refs(value)

    def _resolve_result_refs(self, value):
        """Swap result-path :class:`StateRef` handles back to live payloads
        (recursing into fused-cohort result lists), then free the blobs."""
        if isinstance(value, (list, tuple)):
            return type(value)(self._resolve_result_refs(item) for item in value)
        state = getattr(value, "state", None)
        if isinstance(state, StateRef) and state.label == "result":
            payload = self._channel.fetch(state.key, count=False)
            value.state = as_state_dict(payload)
            self._channel.drop([state.key])
            self._result_refs_resolved += 1
            self._result_ref_bytes += state.nbytes
        return value

    # ------------------------------------------------------------------ #
    def run_tasks(self, tasks: Sequence) -> List:
        if self._server is None:
            raise RuntimeError("RemoteBackend.start(context) must be called before run_tasks")
        self._note_dispatch(tasks)
        batch = self._dispatcher.submit([self._ship(task) for task in tasks])
        while not self._dispatcher.wait(batch, timeout=0.2):
            self._monitor_workers()
        return [self._materialize(batch.outcomes[index]) for index in range(batch.size)]

    def run_tasks_as_completed(self, tasks: Sequence) -> Iterator[Tuple[int, object]]:
        if self._server is None:
            raise RuntimeError("RemoteBackend.start(context) must be called before run_tasks")
        self._note_dispatch(tasks)
        batch = self._dispatcher.submit([self._ship(task) for task in tasks])
        yielded = 0
        while yielded < batch.size:
            produced = False
            for index, outcome in self._dispatcher.iter_outcomes(batch, timeout=0.2):
                produced = True
                yielded += 1
                yield index, self._materialize(outcome)
            if not produced:
                self._monitor_workers()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        if self._server is None:
            raise RuntimeError(
                "RemoteBackend.map requires a started server; call start(None) "
                "for context-free fan-out work before map()")
        return self.run_tasks([_MapCall(fn, item) for item in items])

    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.shutdown()
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        self._procs = []
        if self._server is not None:
            # Let externally-started workers drain: they poll for tasks at
            # ~1 Hz and exit cleanly on the shutdown sentinel; closing the
            # listener under them would turn a clean exit into a
            # connection-lost error.
            drain_deadline = time.monotonic() + 3.0
            while (time.monotonic() < drain_deadline
                   and self._server.counter_snapshot()["workers_connected"] > 0):
                time.sleep(0.05)
        if self._server is not None:
            self._closed_service_stats = self._service.stats()
            self._closed_counters = self._server.counter_snapshot()
            self._server.close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=2.0)
        self._server = None
        self._server_thread = None
        self._service = None
        self._dispatcher = None
        self._started = False
        self._context = None

    # ------------------------------------------------------------------ #
    def transport_stats(self) -> Dict[str, object]:
        stats = super().transport_stats()
        service_stats = (self._service.stats() if self._service is not None
                         else dict(self._closed_service_stats))
        counters = (self._server.counter_snapshot() if self._server is not None
                    else dict(self._closed_counters))
        stats["task_bytes"] = self._task_bytes
        stats["tasks_shipped"] = self._tasks_shipped
        stats["context_published_bytes"] = self._context_published_bytes
        stats["uploaded_bytes"] = int(service_stats.get("uploaded_bytes", 0))
        stats["result_bytes"] = int(counters.get("result_bytes", 0))
        stats["result_refs_resolved"] = self._result_refs_resolved
        stats["workers_connected"] = int(counters.get("workers_connected", 0))
        stats["worker_disconnects"] = int(counters.get("disconnects", 0))
        stats["tasks_requeued"] = int(counters.get("tasks_requeued", 0))
        stats["worker_restarts"] = self.worker_restarts
        stats["server_starts"] = self.server_starts
        stats["delta"] = self.delta
        stats["shipped_bytes"] = (int(stats.get("published_bytes", 0))
                                  + int(stats.get("fetched_bytes", 0))
                                  + int(stats.get("context_bytes", 0))
                                  + self._task_bytes
                                  + self._context_published_bytes
                                  + stats["uploaded_bytes"]
                                  + stats["result_bytes"])
        stats["inline_equivalent_bytes"] = (int(stats.get("inline_bytes", 0))
                                            + self._task_bytes
                                            + stats["result_bytes"]
                                            + self._result_ref_bytes)
        return stats


# --------------------------------------------------------------------------- #
# Spec parsing (registered under the "tcp" scheme in the backend registry)
# --------------------------------------------------------------------------- #
_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off"}


def _parse_flag(spec: str, name: str, text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ValueError(f"invalid backend spec {spec!r}: {name} must be a boolean "
                     f"flag, got {text!r}")


def _parse_int(spec: str, name: str, text: str, minimum: int) -> int:
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"invalid backend spec {spec!r}: {name} must be an "
                         f"integer, got {text!r}") from None
    if value < minimum:
        raise ValueError(f"invalid backend spec {spec!r}: {name} must be "
                         f">= {minimum}, got {value}")
    return value


def make_tcp_backend(spec: str, max_workers: Optional[int] = None) -> RemoteBackend:
    """Build a :class:`RemoteBackend` from a ``tcp://`` spec string."""
    parsed = urlsplit(str(spec))
    if parsed.scheme != "tcp":
        raise ValueError(f"unknown backend spec {spec!r}; expected a tcp:// URL")
    try:
        port = parsed.port
    except ValueError:
        raise ValueError(f"invalid backend spec {spec!r}: bad port") from None
    if port is None:
        raise ValueError(f"invalid backend spec {spec!r}: a port is required "
                         "(use tcp://:0 for an ephemeral port)")
    host = parsed.hostname or "127.0.0.1"
    query = parse_qs(parsed.query, keep_blank_values=True)
    unknown = set(query) - {"workers", "delta", "refs", "cache", "secret"}
    if unknown:
        raise ValueError(f"invalid backend spec {spec!r}: unknown option(s) "
                         f"{', '.join(sorted(unknown))}")

    workers = max_workers if max_workers is not None else 0
    if "workers" in query:
        workers = _parse_int(spec, "workers", query["workers"][-1], minimum=0)
    delta = _parse_flag(spec, "delta", query["delta"][-1]) if "delta" in query else True
    threshold = (_parse_int(spec, "refs", query["refs"][-1], minimum=0)
                 if "refs" in query else DEFAULT_RESULT_REF_THRESHOLD)
    cache = (_parse_int(spec, "cache", query["cache"][-1], minimum=1)
             if "cache" in query else DEFAULT_WORKER_CACHE_BYTES)
    secret = (query["secret"][-1] if "secret" in query
              else os.environ.get("REPRO_NET_SECRET")) or None
    return RemoteBackend(host=host, port=port, workers=workers, delta=delta,
                         cache_bytes=cache, result_ref_threshold=threshold,
                         secret=secret)
