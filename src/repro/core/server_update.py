"""Server-side zero-shot knowledge transfer (Algorithm 3 of the paper).

The :class:`ZeroShotDistiller` owns the generator ``G`` and the global
model ``F`` and performs, each communication round:

1. **Device → global transfer** (adversarial phase): alternate between a
   generator step that *maximizes* the disagreement ``L(F(G(z)), f_ens(G(z)))``
   and a global-model step that *minimizes* it (Eq. 2).
2. **Global → device transfer** (back-transfer phase): reuse the trained
   generator to synthesize inputs and distill the updated global model into
   every on-device model with the KL-divergence loss (Eq. 8).

The distiller also records the diagnostics the paper reports: per-phase
losses and the norm of the disagreement gradient with respect to the
synthesized inputs (Fig. 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..federated.config import ServerConfig
from ..models.base import ClassificationModel
from ..models.generator import Generator
from ..nn import no_grad
from ..nn.losses import get_distillation_loss, kl_divergence_loss
from ..nn.optim import SGD, Adam, MultiStepLR
from ..nn.tensor import Tensor
from .distillation import disagreement_loss, ensemble_mode_for_loss, ensemble_output

__all__ = ["ZeroShotDistiller", "DistillationReport"]


class DistillationReport(dict):
    """Metrics of one server update (a plain dict with attribute-style docs).

    Keys
    ----
    ``generator_loss`` / ``global_loss``:
        Mean adversarial losses over the distillation iterations.
    ``transfer_loss``:
        Mean KL back-transfer loss over devices and iterations.
    ``input_gradient_norm``:
        Mean norm of the disagreement gradient w.r.t. the synthesized inputs
        (the quantity plotted in Fig. 2).
    ``parameter_updates``:
        Total parameter-gradient evaluations done by the server this round
        (used by the compute-split ablation).
    """


class ZeroShotDistiller:
    """Implements the ServerUpdate procedure of FedZKT.

    Parameters
    ----------
    global_model:
        The server's global model ``F``.
    generator:
        The server's generative model ``G``.
    config:
        Server hyper-parameters (iterations, batch size, learning rates,
        distillation loss).
    seed:
        Seed of the noise-sampling RNG.
    """

    def __init__(self, global_model: ClassificationModel, generator: Generator,
                 config: ServerConfig, seed: int = 0) -> None:
        self.global_model = global_model
        self.generator = generator
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._loss_name = config.distillation_loss
        # Optimizers persist across rounds so momentum/Adam state carries over.
        self.generator_optimizer = Adam(generator.parameters(), lr=config.generator_lr)
        self.global_optimizer = SGD(global_model.parameters(), lr=config.global_lr,
                                    momentum=0.9)
        self.parameter_updates_total = 0

    # ------------------------------------------------------------------ #
    # Phase 1: device knowledge -> global model (adversarial game, Eq. 2)
    # ------------------------------------------------------------------ #
    def adversarial_distillation(self, teachers: Sequence[ClassificationModel],
                                 iterations: Optional[int] = None) -> DistillationReport:
        """Alternate generator (max) and global model (min) steps."""
        if not teachers:
            raise ValueError("adversarial distillation requires at least one teacher")
        iterations = iterations if iterations is not None else self.config.distillation_iterations
        generator_losses: List[float] = []
        global_losses: List[float] = []
        input_grad_norms: List[float] = []
        updates = 0

        gen_scheduler = self._make_scheduler(self.generator_optimizer, iterations,
                                             self.config.generator_lr)
        glob_scheduler = self._make_scheduler(self.global_optimizer, iterations,
                                              self.config.global_lr)

        for teacher in teachers:
            teacher.eval()
        self.global_model.train()
        self.generator.train()

        steps_per_generator = max(1, int(self.config.global_steps_per_generator_step))

        for iteration in range(iterations):
            # ---- Generator step: maximize the disagreement -------------------
            # Run every ``steps_per_generator`` iterations; with the paper's
            # literal 1:1 alternation set the config knob to 1.
            if iteration % steps_per_generator == 0:
                noise = self.generator.sample_noise(self.config.batch_size, self._rng)
                synthetic = self.generator(noise)
                loss = disagreement_loss(self.global_model, teachers, synthetic, self._loss_name)
                generator_loss = loss * -1.0
                self._zero_all(teachers)
                self.generator_optimizer.zero_grad()
                self.global_optimizer.zero_grad()
                generator_loss.backward()
                if synthetic.grad is not None:
                    input_grad_norms.append(float(np.linalg.norm(synthetic.grad)))
                self.generator_optimizer.step()
                generator_losses.append(loss.item())
                updates += self._count_parameters(self.generator)

            # ---- Global-model step: minimize the disagreement ----------------
            noise = self.generator.sample_noise(self.config.batch_size, self._rng)
            with no_grad():
                synthetic = self.generator(noise)
                teacher_out = ensemble_output(
                    teachers, synthetic, mode=ensemble_mode_for_loss(self._loss_name)
                )
            student_logits = self.global_model(Tensor(synthetic.data))
            loss_fn = get_distillation_loss(self._loss_name)
            global_loss = loss_fn(student_logits, Tensor(teacher_out.data))
            self.global_optimizer.zero_grad()
            global_loss.backward()
            self.global_optimizer.step()
            global_losses.append(global_loss.item())
            updates += self._count_parameters(self.global_model)

            gen_scheduler.step()
            glob_scheduler.step()

        self.parameter_updates_total += updates
        return DistillationReport(
            generator_loss=float(np.mean(generator_losses)) if generator_losses else 0.0,
            global_loss=float(np.mean(global_losses)) if global_losses else 0.0,
            input_gradient_norm=float(np.mean(input_grad_norms)) if input_grad_norms else 0.0,
            parameter_updates=updates,
        )

    # ------------------------------------------------------------------ #
    # Phase 2: global model -> on-device models (Eq. 8)
    # ------------------------------------------------------------------ #
    def transfer_to_devices(self, device_models: Dict[int, ClassificationModel],
                            iterations: Optional[int] = None) -> DistillationReport:
        """Distill the global model back into every on-device model."""
        if not device_models:
            raise ValueError("transfer requires at least one device model")
        iterations = iterations if iterations is not None else self.config.effective_transfer_iterations
        transfer_losses: List[float] = []
        updates = 0

        self.global_model.eval()
        self.generator.eval()
        optimizers = {
            device_id: SGD(model.parameters(), lr=self.config.device_distill_lr, momentum=0.9)
            for device_id, model in device_models.items()
        }
        for model in device_models.values():
            model.train()

        for _ in range(iterations):
            noise = self.generator.sample_noise(self.config.batch_size, self._rng)
            with no_grad():
                synthetic = self.generator(noise)
                teacher_probs = self.global_model(synthetic).softmax(axis=-1)
            inputs = Tensor(synthetic.data)
            targets = Tensor(teacher_probs.data)
            for device_id, model in device_models.items():
                student_logits = model(inputs)
                loss = kl_divergence_loss(student_logits, targets)
                optimizers[device_id].zero_grad()
                loss.backward()
                optimizers[device_id].step()
                transfer_losses.append(loss.item())
                updates += self._count_parameters(model)

        self.global_model.train()
        self.generator.train()
        self.parameter_updates_total += updates
        return DistillationReport(
            transfer_loss=float(np.mean(transfer_losses)) if transfer_losses else 0.0,
            parameter_updates=updates,
        )

    # ------------------------------------------------------------------ #
    # Full server update (Algorithm 3)
    # ------------------------------------------------------------------ #
    def server_update(self, device_models: Dict[int, ClassificationModel]) -> DistillationReport:
        """Run both phases and return the merged metrics."""
        teachers = list(device_models.values())
        phase1 = self.adversarial_distillation(teachers)
        phase2 = self.transfer_to_devices(device_models)
        return DistillationReport(
            generator_loss=phase1["generator_loss"],
            global_loss=phase1["global_loss"],
            input_gradient_norm=phase1["input_gradient_norm"],
            transfer_loss=phase2["transfer_loss"],
            parameter_updates=phase1["parameter_updates"] + phase2["parameter_updates"],
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _make_scheduler(self, optimizer, iterations: int, base_lr: float) -> MultiStepLR:
        optimizer.lr = base_lr
        milestones = [max(1, int(iterations * fraction))
                      for fraction in self.config.lr_decay_milestones]
        scheduler = MultiStepLR(optimizer, milestones=milestones, gamma=self.config.lr_decay_gamma)
        scheduler.base_lr = base_lr
        return scheduler

    @staticmethod
    def _zero_all(models: Sequence[ClassificationModel]) -> None:
        for model in models:
            model.zero_grad()

    @staticmethod
    def _count_parameters(model) -> int:
        return int(model.num_parameters()) if hasattr(model, "num_parameters") else 0
