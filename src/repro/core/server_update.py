"""Server-side zero-shot knowledge transfer (Algorithm 3 of the paper).

The :class:`ZeroShotDistiller` owns the generator ``G`` and the global
model ``F`` and performs, each communication round:

1. **Device → global transfer** (adversarial phase): alternate between a
   generator step that *maximizes* the disagreement ``L(F(G(z)), f_ens(G(z)))``
   and a global-model step that *minimizes* it (Eq. 2).
2. **Global → device transfer** (back-transfer phase): reuse the trained
   generator to synthesize inputs and distill the updated global model into
   every on-device model with the KL-divergence loss (Eq. 8).

Both phases can be *sharded* across an
:class:`~repro.federated.backend.ExecutionBackend` (``ServerConfig.
server_shards > 1`` plus :meth:`ZeroShotDistiller.bind_backend`): Phase 1
fans the per-teacher ensemble forward — and, on generator steps, the
backward to the synthesized inputs — out as
:class:`~repro.core.server_tasks.EnsembleForwardTask` /
:class:`~repro.core.server_tasks.EnsembleVJPTask` shards and reduces the
weighted mean on the driver in teacher order; Phase 2 dispatches one
:class:`~repro.core.server_tasks.DeviceDistillTask` per shard of device
models, each consuming identical precomputed synthetic batches.  Shared
payloads travel through the backend's content-addressed state store:
teacher states are published **once per round** (every shard task of every
synthesis iteration then carries a tiny ref, and each worker fetches a
teacher's blob at most once), and per-iteration synthetic batches are
published once, shared across shards, and discarded as soon as their
dispatch completes.  The sharded path is bit-identical to the serial one
(model states, metrics, and gradients), which the parity tests in
``tests/core/test_server_sharding.py`` pin.

The distiller also records the diagnostics the paper reports: per-phase
losses and the norm of the disagreement gradient with respect to the
synthesized inputs (Fig. 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..federated.config import ServerConfig
from ..models.base import ClassificationModel
from ..models.generator import Generator
from ..nn import no_grad
from ..nn.batched import fusion_signature
from ..nn.losses import get_distillation_loss, kl_divergence_loss
from ..nn.optim import SGD, Adam, MultiStepLR, Optimizer
from ..nn.tensor import Tensor
from ..utils.serialization import pack_array_list, pack_state_dict
from .distillation import disagreement_loss, ensemble_mode_for_loss, ensemble_output
from .server_tasks import (
    DeviceDistillTask,
    EnsembleForwardTask,
    EnsembleVJPTask,
    distill_group_fused,
    distill_optimizer_state,
    load_distill_optimizer_state,
    make_distill_optimizer,
    partition_shards,
)

__all__ = ["ZeroShotDistiller", "DistillationReport"]


class DistillationReport(dict):
    """Metrics of one server update (a plain dict with attribute-style docs).

    Keys
    ----
    ``generator_loss`` / ``global_loss``:
        Mean adversarial losses over the distillation iterations.
    ``transfer_loss``:
        Mean KL back-transfer loss over devices and iterations.
    ``input_gradient_norm``:
        Mean norm of the disagreement gradient w.r.t. the synthesized inputs
        (the quantity plotted in Fig. 2).
    ``parameter_updates``:
        Total parameter-gradient evaluations done by the server this round
        (used by the compute-split ablation).
    """


class ZeroShotDistiller:
    """Implements the ServerUpdate procedure of FedZKT.

    Parameters
    ----------
    global_model:
        The server's global model ``F``.
    generator:
        The server's generative model ``G``.
    config:
        Server hyper-parameters (iterations, batch size, learning rates,
        distillation loss, server shard count).
    seed:
        Seed of the noise-sampling RNG.
    backend:
        Optional execution backend used when ``config.server_shards > 1``;
        usually installed later via :meth:`bind_backend` by the simulation
        engine.  Without a backend the distiller always runs in process.
    cohort_fusion:
        Fuse both phases over same-architecture groups.  Phase 1: shard
        tasks evaluate their same-signature teachers through one stacked
        forward/VJP.  Phase 2: same-signature device replicas distill in
        one :func:`~repro.core.server_tasks.distill_group_fused` loop —
        per-device persisted optimizer state rides along as stacked
        momentum (or stacked Adam moments with per-slice step counters).
        Both are bit-identical to the unfused path; heterogeneous models
        fall back per model.
    """

    def __init__(self, global_model: ClassificationModel, generator: Generator,
                 config: ServerConfig, seed: int = 0, backend=None,
                 cohort_fusion: bool = False) -> None:
        self.global_model = global_model
        self.generator = generator
        self.config = config
        self.backend = backend
        self.cohort_fusion = bool(cohort_fusion)
        self._rng = np.random.default_rng(seed)
        self._loss_name = config.distillation_loss
        # Optimizers persist across rounds so momentum/Adam state carries over.
        self.generator_optimizer = Adam(generator.parameters(), lr=config.generator_lr)
        self.global_optimizer = SGD(global_model.parameters(), lr=config.global_lr,
                                    momentum=0.9)
        # Device-distill optimizers persist too (keyed by device id), so the
        # back-transfer momentum carries across rounds instead of silently
        # resetting every server update.
        self._device_optimizers: Dict[int, Tuple[ClassificationModel, Optimizer]] = {}
        self.parameter_updates_total = 0

    # ------------------------------------------------------------------ #
    # Backend plumbing
    # ------------------------------------------------------------------ #
    def bind_backend(self, backend) -> None:
        """Install the execution backend used for sharded server updates."""
        self.backend = backend

    @property
    def sharding_active(self) -> bool:
        """Whether server updates are dispatched through the backend."""
        return self.backend is not None and self.config.shard_server_update

    @property
    def _ship_payloads(self) -> bool:
        """Whether shared task payloads should be pre-packed for the wire.

        Packing once on the driver and sharing the blob across shard tasks
        beats per-pickle packing on process backends; in-process backends
        never pickle, so raw arrays/dicts flow through untouched.  Only
        consulted on the legacy inline path (backends without a state
        store) — with a store, packing happens once at publish time.
        """
        return bool(getattr(self.backend, "ships_payloads", True))

    @property
    def _store(self):
        """The backend's content-addressed state store (None → inline payloads)."""
        return getattr(self.backend, "state_store", None)

    # Shard-task payload helpers: publish through the state store when the
    # backend has one (tasks then carry tiny refs; the blob ships at most
    # once per worker), fall back to the pre-store inline wire format
    # otherwise.  Published refs are collected into ``ephemerals`` and
    # dropped from the channel as soon as the tasks that referenced them
    # have completed — per-iteration synthetic batches would otherwise
    # accumulate in the channel for a whole round.
    def _put_state(self, state, label: str, ephemerals: List):
        store = self._store
        if store is None:
            return pack_state_dict(state) if self._ship_payloads else state
        ref = store.put_state(state, label=label)
        ephemerals.append(ref)
        return ref

    def _put_arrays(self, arrays, label: str, ephemerals: List):
        store = self._store
        if store is None:
            return pack_array_list(list(arrays)) if self._ship_payloads else list(arrays)
        ref = store.put_arrays(list(arrays), label=label)
        ephemerals.append(ref)
        return ref

    def _put_batch(self, array, label: str, ephemerals: List):
        """Single-array payload (synthetic batch / upstream gradient)."""
        store = self._store
        if store is None:
            return pack_array_list([array]) if self._ship_payloads else array
        ref = store.put_arrays([array], label=label)
        ephemerals.append(ref)
        return ref

    def _drain(self, ephemerals: List) -> None:
        store = self._store
        if store is not None and ephemerals:
            store.discard(list(ephemerals))
        ephemerals.clear()

    def device_optimizer_for(self, device_id: int,
                             model: ClassificationModel) -> Optimizer:
        """The persistent back-transfer optimizer for a device model.

        Created lazily per ``config.device_distill_optimizer`` (SGD with
        momentum 0.9, or Adam); recreated only when the model object for
        the id changes (the optimizer holds references to the model's
        parameter tensors).
        """
        cached = self._device_optimizers.get(device_id)
        if cached is None or cached[0] is not model:
            optimizer = make_distill_optimizer(
                model, self.config.device_distill_lr, 0.9,
                self.config.device_distill_optimizer)
            self._device_optimizers[device_id] = (model, optimizer)
            return optimizer
        return cached[1]

    # ------------------------------------------------------------------ #
    # Phase 1: device knowledge -> global model (adversarial game, Eq. 2)
    # ------------------------------------------------------------------ #
    def adversarial_distillation(self, teachers: Sequence[ClassificationModel],
                                 iterations: Optional[int] = None,
                                 teacher_ids: Optional[Sequence[int]] = None) -> DistillationReport:
        """Alternate generator (max) and global model (min) steps.

        ``teacher_ids`` keys the teachers into the backend's worker context
        for the sharded path; without ids (or without a bound backend) the
        phase runs in process.
        """
        if not teachers:
            raise ValueError("adversarial distillation requires at least one teacher")
        iterations = iterations if iterations is not None else self.config.distillation_iterations
        sharded = self.sharding_active and teacher_ids is not None
        generator_losses: List[float] = []
        global_losses: List[float] = []
        input_grad_norms: List[float] = []
        updates = 0

        gen_scheduler = self._make_scheduler(self.generator_optimizer, iterations,
                                             self.config.generator_lr)
        glob_scheduler = self._make_scheduler(self.global_optimizer, iterations,
                                              self.config.global_lr)

        for teacher in teachers:
            teacher.eval()
        self.global_model.train()
        self.generator.train()

        mode = ensemble_mode_for_loss(self._loss_name)
        loss_fn = get_distillation_loss(self._loss_name)
        weights = [1.0 / len(teachers)] * len(teachers)
        if sharded:
            # Teachers are frozen throughout the adversarial phase, so
            # snapshot their states once and publish them once into the
            # state store: every forward/VJP shard task of every synthesis
            # iteration then carries a tiny ref, and each worker fetches a
            # teacher's blob at most once for the whole round.  phase_refs
            # live until the phase ends; iteration_refs (synthetic batches,
            # upstream gradients) are dropped as soon as the next iteration
            # starts.
            teacher_ids = list(teacher_ids)
            snapshots = [teacher.state_dict() for teacher in teachers]
            phase_refs: List = []
            iteration_refs: List = []
            shipped_states = [self._put_state(state, "teacher", phase_refs)
                              for state in snapshots]
            shards = partition_shards(list(range(len(teachers))), self.config.server_shards)

        steps_per_generator = max(1, int(self.config.global_steps_per_generator_step))

        for iteration in range(iterations):
            if sharded:
                # Previous iteration's synthetic batches / upstream payloads
                # are done with: drop them from the channel.
                self._drain(iteration_refs)
            # ---- Generator step: maximize the disagreement -------------------
            # Run every ``steps_per_generator`` iterations; with the paper's
            # literal 1:1 alternation set the config knob to 1.
            if iteration % steps_per_generator == 0:
                noise = self.generator.sample_noise(self.config.batch_size, self._rng)
                synthetic = self.generator(noise)
                # The input-gradient norm below reads this intermediate's
                # gradient after backward; keep it through buffer reclaim.
                synthetic.retain_grad()
                if sharded:
                    # Same op order as disagreement_loss: student branch first,
                    # then the ensemble branch (here a backend-backed graph node).
                    student_logits = self.global_model(synthetic)
                    teacher_out = self._sharded_ensemble_node(
                        synthetic, teacher_ids, shipped_states, weights, mode, shards,
                        iteration_refs)
                    loss = loss_fn(student_logits, teacher_out)
                else:
                    loss = disagreement_loss(self.global_model, teachers, synthetic,
                                             self._loss_name)
                generator_loss = loss * -1.0
                self._zero_all(teachers)
                self.generator_optimizer.zero_grad(set_to_none=False)
                self.global_optimizer.zero_grad(set_to_none=False)
                generator_loss.backward()
                if synthetic.grad is not None:
                    input_grad_norms.append(float(np.linalg.norm(synthetic.grad)))
                self.generator_optimizer.step()
                generator_losses.append(loss.item())
                updates += self._count_parameters(self.generator)

            # ---- Global-model step: minimize the disagreement ----------------
            noise = self.generator.sample_noise(self.config.batch_size, self._rng)
            with no_grad():
                synthetic = self.generator(noise)
                if not sharded:
                    teacher_out = ensemble_output(teachers, synthetic, mode=mode)
            if sharded:
                members = self._sharded_members(
                    teacher_ids, shipped_states,
                    self._put_batch(synthetic.data, "batch", iteration_refs),
                    mode, shards)
                teacher_data = self._reduce_members(members, weights)
            else:
                teacher_data = teacher_out.data
            student_logits = self.global_model(Tensor(synthetic.data))
            global_loss = loss_fn(student_logits, Tensor(teacher_data))
            self.global_optimizer.zero_grad(set_to_none=False)
            global_loss.backward()
            self.global_optimizer.step()
            global_losses.append(global_loss.item())
            updates += self._count_parameters(self.global_model)

            gen_scheduler.step()
            glob_scheduler.step()

        if sharded:
            self._drain(iteration_refs)
            self._drain(phase_refs)
        self.parameter_updates_total += updates
        return DistillationReport(
            generator_loss=float(np.mean(generator_losses)) if generator_losses else 0.0,
            global_loss=float(np.mean(global_losses)) if global_losses else 0.0,
            input_gradient_norm=float(np.mean(input_grad_norms)) if input_grad_norms else 0.0,
            parameter_updates=updates,
        )

    # ------------------------------------------------------------------ #
    # Sharded Phase-1 helpers
    # ------------------------------------------------------------------ #
    def _sharded_members(self, teacher_ids: List[int], shipped_states: List,
                         inputs, mode: str,
                         shards: List[List[int]]) -> List[np.ndarray]:
        """Unweighted member outputs of every teacher, in teacher order.

        ``inputs`` is a prepared payload — a state-store ref (the normal
        case: published once, shared by every shard task and fetched at most
        once per worker), or the legacy raw-batch / packed-blob forms for
        backends without a store.
        """
        tasks = [EnsembleForwardTask(device_ids=[teacher_ids[i] for i in shard],
                                     states=[shipped_states[i] for i in shard],
                                     inputs=inputs, mode=mode,
                                     fuse=self.cohort_fusion)
                 for shard in shards]
        results = self.backend.run_tasks(tasks)
        return [member for shard_members in results for member in shard_members]

    @staticmethod
    def _reduce_members(members: List[np.ndarray], weights: List[float]) -> np.ndarray:
        """Weighted mean over members with the serial loop's exact reduction
        order/association (term-by-term, ascending teacher index)."""
        total: Optional[np.ndarray] = None
        for member, weight in zip(members, weights):
            term = member * float(weight)
            total = term if total is None else total + term
        return total

    def _sharded_ensemble_node(self, x: Tensor, teacher_ids: List[int],
                               shipped_states: List, weights: List[float],
                               mode: str, shards: List[List[int]],
                               ephemerals: List) -> Tensor:
        """Backend-backed ensemble output wired into the autograd graph.

        Forward fans member evaluation out as :class:`EnsembleForwardTask`
        shards; backward fans the input-gradient computation out as
        :class:`EnsembleVJPTask` shards and accumulates the per-teacher
        contributions into ``x.grad`` in ascending teacher order — the same
        order the serial graph's reversed topological sort produces — so
        the generator step is bit-identical to the in-process path.  The
        synthesized inputs and the upstream gradient are published once
        into ``ephemerals`` (dropped by the caller after the backward).
        """
        shared_inputs = self._put_batch(x.data, "batch", ephemerals)
        members = self._sharded_members(teacher_ids, shipped_states, shared_inputs,
                                        mode, shards)
        total = self._reduce_members(members, weights)
        backend = self.backend

        def factory(out: Tensor):
            def backward() -> None:
                if not x.requires_grad:
                    return
                upstream = self._put_batch(np.asarray(out.grad, dtype=np.float64),
                                           "batch", ephemerals)
                tasks = [EnsembleVJPTask(device_ids=[teacher_ids[i] for i in shard],
                                         states=[shipped_states[i] for i in shard],
                                         weights=[weights[i] for i in shard],
                                         inputs=shared_inputs, upstream=upstream,
                                         mode=mode, fuse=self.cohort_fusion)
                         for shard in shards]
                for shard_grads in backend.run_tasks(tasks):
                    for grad in shard_grads:
                        x._accumulate(grad)

            return backward

        return Tensor._make(np.asarray(total), (x,), factory)

    # ------------------------------------------------------------------ #
    # Phase 2: global model -> on-device models (Eq. 8)
    # ------------------------------------------------------------------ #
    def transfer_to_devices(self, device_models: Dict[int, ClassificationModel],
                            iterations: Optional[int] = None) -> DistillationReport:
        """Distill the global model back into every on-device model."""
        if not device_models:
            raise ValueError("transfer requires at least one device model")
        iterations = iterations if iterations is not None else self.config.effective_transfer_iterations

        self.global_model.eval()
        self.generator.eval()
        optimizers = {
            device_id: self.device_optimizer_for(device_id, model)
            for device_id, model in device_models.items()
        }
        for model in device_models.values():
            model.train()

        if self.sharding_active:
            transfer_losses, updates = self._transfer_sharded(device_models, optimizers,
                                                              iterations)
        else:
            transfer_losses, updates = self._transfer_serial(device_models, optimizers,
                                                             iterations)

        self.global_model.train()
        self.generator.train()
        self.parameter_updates_total += updates
        return DistillationReport(
            transfer_loss=float(np.mean(transfer_losses)) if transfer_losses else 0.0,
            parameter_updates=updates,
        )

    def _synthesize_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """One synthetic input batch and its global-model soft targets."""
        noise = self.generator.sample_noise(self.config.batch_size, self._rng)
        with no_grad():
            synthetic = self.generator(noise)
            teacher_probs = self.global_model(synthetic).softmax(axis=-1)
        return synthetic.data, teacher_probs.data

    def _synthesize_batches(self, iterations: int) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Precompute every iteration's synthetic batch and soft targets.

        The distill loops consume no driver RNG, so synthesizing up front
        draws the exact noise sequence the historical interleaved loop drew
        — batches are bit-identical, and sharing them across devices,
        shards, and fused groups needs no further care.
        """
        batches: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for _ in range(iterations):
            batch, target = self._synthesize_batch()
            batches.append(batch)
            targets.append(target)
        return batches, targets

    def _fused_device_groups(self, device_models: Dict[int, ClassificationModel],
                             ) -> List[List[int]]:
        """Same-signature device-id groups (≥2) eligible for fused transfer."""
        groups: Dict[tuple, List[int]] = {}
        for device_id, model in device_models.items():
            signature = fusion_signature(model)
            if signature is None:
                continue
            groups.setdefault(signature, []).append(device_id)
        return [ids for ids in groups.values() if len(ids) >= 2]

    def _transfer_serial(self, device_models: Dict[int, ClassificationModel],
                         optimizers: Dict[int, Optimizer],
                         iterations: int) -> Tuple[List[float], int]:
        device_order = list(device_models.keys())
        batches, targets = self._synthesize_batches(iterations)
        losses_by_device: Dict[int, List[float]] = {}

        fused_ids: set = set()
        if self.cohort_fusion:
            for group_ids in self._fused_device_groups(device_models):
                template = device_models[group_ids[0]]
                group_states, group_velocities, group_losses = distill_group_fused(
                    template,
                    [device_models[device_id].state_dict() for device_id in group_ids],
                    [distill_optimizer_state(optimizers[device_id])
                     for device_id in group_ids],
                    batches, targets, self.config.device_distill_lr, 0.9,
                    self.config.device_distill_optimizer,
                    members=[device_models[device_id] for device_id in group_ids])
                for slot, device_id in enumerate(group_ids):
                    device_models[device_id].load_state_dict(group_states[slot])
                    load_distill_optimizer_state(optimizers[device_id],
                                                 group_velocities[slot])
                    losses_by_device[device_id] = group_losses[slot]
                    fused_ids.add(device_id)

        for device_id in device_order:
            if device_id in fused_ids:
                continue
            model = device_models[device_id]
            optimizer = optimizers[device_id]
            losses: List[float] = []
            for batch, target in zip(batches, targets):
                student_logits = model(Tensor(batch))
                loss = kl_divergence_loss(student_logits, Tensor(target))
                optimizer.zero_grad(set_to_none=False)
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            losses_by_device[device_id] = losses

        # Reassemble iteration-major so ``transfer_loss`` reduces in the
        # historical interleaved (iteration, device) order.
        transfer_losses = [losses_by_device[device_id][iteration]
                           for iteration in range(iterations)
                           for device_id in device_order]
        updates = iterations * sum(self._count_parameters(model)
                                   for model in device_models.values())
        return transfer_losses, updates

    def _transfer_sharded(self, device_models: Dict[int, ClassificationModel],
                          optimizers: Dict[int, Optimizer],
                          iterations: int) -> Tuple[List[float], int]:
        """Backend-sharded Phase 2: one distill task per shard of devices.

        The per-iteration synthetic batches are precomputed on the driver
        (consuming the noise RNG in the serial order), every shard consumes
        the same batches, and the loss list is reassembled iteration-major
        so ``transfer_loss`` reduces in the serial order.
        """
        device_order = list(device_models.keys())
        batches, targets = self._synthesize_batches(iterations)

        shards = partition_shards(device_order, self.config.server_shards)
        # Publish the *shared* batch/target payloads once into the state
        # store (every shard task carries the same ref; each worker fetches
        # at most once), ephemeral and dropped after the dispatch.  The
        # per-device states and momentum buffers stay inline: each is
        # referenced by exactly one shard task, and for singly-referenced
        # payloads publish-then-fetch would ship ~2x the bytes of an inline
        # copy.  In-process backends store live objects (nothing is packed).
        ephemerals: List = []
        packed_inputs = self._put_arrays(batches, "batch", ephemerals)
        packed_targets = self._put_arrays(targets, "batch", ephemerals)
        tasks = [DeviceDistillTask(
            device_ids=list(shard),
            states=[device_models[device_id].state_dict() for device_id in shard],
            velocities=[distill_optimizer_state(optimizers[device_id])
                        for device_id in shard],
            inputs=packed_inputs, targets=packed_targets,
            lr=self.config.device_distill_lr, momentum=0.9,
            optimizer=self.config.device_distill_optimizer,
            fuse=self.cohort_fusion,
        ) for shard in shards]
        results = self.backend.run_tasks(tasks)

        losses_by_device: Dict[int, List[float]] = {}
        for result in results:
            for index, device_id in enumerate(result.device_ids):
                device_models[device_id].load_state_dict(result.state_dict_for(index))
                load_distill_optimizer_state(optimizers[device_id],
                                             result.velocity_for(index))
                losses_by_device[device_id] = result.losses[index]

        self._drain(ephemerals)
        transfer_losses = [losses_by_device[device_id][iteration]
                           for iteration in range(iterations)
                           for device_id in device_order]
        updates = iterations * sum(self._count_parameters(model)
                                   for model in device_models.values())
        return transfer_losses, updates

    # ------------------------------------------------------------------ #
    # Full server update (Algorithm 3)
    # ------------------------------------------------------------------ #
    def server_update(self, device_models: Dict[int, ClassificationModel]) -> DistillationReport:
        """Run both phases and return the merged metrics."""
        teachers = list(device_models.values())
        phase1 = self.adversarial_distillation(teachers,
                                               teacher_ids=list(device_models.keys()))
        phase2 = self.transfer_to_devices(device_models)
        return DistillationReport(
            generator_loss=phase1["generator_loss"],
            global_loss=phase1["global_loss"],
            input_gradient_norm=phase1["input_gradient_norm"],
            transfer_loss=phase2["transfer_loss"],
            parameter_updates=phase1["parameter_updates"] + phase2["parameter_updates"],
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _make_scheduler(self, optimizer, iterations: int, base_lr: float) -> MultiStepLR:
        optimizer.lr = base_lr
        milestones = [max(1, int(iterations * fraction))
                      for fraction in self.config.lr_decay_milestones]
        scheduler = MultiStepLR(optimizer, milestones=milestones, gamma=self.config.lr_decay_gamma)
        scheduler.base_lr = base_lr
        return scheduler

    @staticmethod
    def _zero_all(models: Sequence[ClassificationModel]) -> None:
        for model in models:
            model.zero_grad(set_to_none=False)

    @staticmethod
    def _count_parameters(model) -> int:
        return int(model.num_parameters()) if hasattr(model, "num_parameters") else 0
