"""Picklable tasks that shard the FedZKT server update across workers.

Algorithm 3 has two compute blocks that dominate server wall time and are
naturally data-parallel over *models*:

* **Phase 1** (adversarial game) evaluates the teacher ensemble
  ``f_ens(x)`` — one independent forward (and, for the generator step, one
  backward to the synthesized inputs) per on-device architecture;
* **Phase 2** (back-transfer) distills the global model into every
  on-device architecture from identical synthetic input/target batches.

This module packages both as tasks for the
:class:`~repro.federated.backend.ExecutionBackend`.  State payloads arrive
either as :class:`~repro.utils.serialization.StateRef` handles into the
backend's content-addressed state store (the normal case — teacher states
and shared synthetic batches are published once per round) or in the
legacy inline forms (plain dicts in-process, packed npz blobs on the
wire); tasks resolve all three uniformly.  Execution borrows the
per-process :class:`~repro.federated.backend.WorkerContext` (whose model
replicas share architectures with the server-side replicas, keyed by
device id).  Tasks *borrow* a context model: they snapshot its parameters,
buffers, and train/eval mode, load the server-side state, compute, and
restore the snapshot — so on the serial backend (where context models are
the live device models) a sharded server update never leaks state into the
devices.

Bit-identity contract (pinned by ``tests/core/test_server_sharding.py``):
every task replays the exact Tensor ops of the in-process code path on the
same float64 payloads, and the driver reduces partial results in the same
order the serial loop would, so sharded and serial server updates produce
identical model states, metrics, and gradients.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

from ..federated.backend import WorkerContext, resolve_arrays, resolve_state
from ..nn import no_grad
from ..nn.batched import (
    BatchedAdam,
    BatchedModule,
    BatchedSGD,
    batched_kl_divergence,
    fusion_signature,
)
from ..nn.losses import kl_divergence_loss
from ..nn.optim import SGD, Adam, Optimizer
from ..nn.tensor import Tensor
from ..utils.serialization import (
    StateLike,
    StateRef,
    as_array_list,
    as_state_dict,
    pack_array_list,
    pack_state_dict,
)

__all__ = [
    "partition_shards",
    "borrowed_model",
    "make_distill_optimizer",
    "distill_optimizer_state",
    "load_distill_optimizer_state",
    "distill_group_fused",
    "EnsembleForwardTask",
    "EnsembleVJPTask",
    "DeviceDistillTask",
    "DeviceDistillResult",
]

#: A shard task's per-model state payload: a ref into the state store (the
#: normal case — teacher states are published once per round), a packed
#: blob, or a plain dict.
ShardState = Union[StateRef, StateLike]


def _pack_states(states: Sequence[ShardState]) -> List:
    """Pack raw dict payloads for the wire; refs/blobs pass through."""
    return [pack_state_dict(state) if isinstance(state, dict) else state
            for state in states]


def _single_array(value) -> np.ndarray:
    """Materialize a single-array payload (ref / packed blob / raw array)."""
    if isinstance(value, (StateRef, bytes)):
        return resolve_arrays(value)[0]
    return value


def partition_shards(items: Sequence, num_shards: int) -> List[List]:
    """Split ``items`` into at most ``num_shards`` contiguous, near-even groups.

    Contiguity matters: the driver re-reduces per-model partial results in
    the original model order, which keeps the floating-point reduction
    association identical to the serial loop.
    """
    items = list(items)
    if not items:
        return []
    num_shards = max(1, min(int(num_shards), len(items)))
    bounds = np.linspace(0, len(items), num_shards + 1).astype(int)
    return [items[start:stop] for start, stop in zip(bounds[:-1], bounds[1:]) if stop > start]


@contextmanager
def borrowed_model(context: WorkerContext, device_id: int, state: ShardState,
                   train: bool):
    """Temporarily load ``state`` into the context's replica for ``device_id``.

    Restores the replica's original parameters, buffers, and train/eval
    mode on exit (and clears any gradients the task accumulated), which
    makes server-side tasks safe on the serial backend where context
    models alias the live device models.
    """
    model = context.model_for(device_id)
    snapshot = model.state_dict()
    saved_mode = model.training
    model.load_state_dict(resolve_state(state))
    model.train(train)
    try:
        yield model
    finally:
        model.load_state_dict(snapshot)
        model.train(saved_mode)
        model.zero_grad()


def _member_output(model, x: Tensor, mode: str) -> Tensor:
    """One teacher's ensemble member — the same ops ``ensemble_output`` runs."""
    logits = model(x)
    return logits.softmax(axis=-1) if mode == "prob" else logits


def _fusion_groups(context: WorkerContext, device_ids: Sequence[int]) -> List[List[int]]:
    """Positions of same-signature teachers that may share a fused forward.

    Only groups of two or more are returned; singletons and models without
    a batched adapter stay on the per-model ``borrowed_model`` path.
    """
    groups: Dict[tuple, List[int]] = {}
    for position, device_id in enumerate(device_ids):
        signature = fusion_signature(context.model_for(device_id))
        if signature is None:
            continue
        groups.setdefault(signature, []).append(position)
    return [positions for positions in groups.values() if len(positions) >= 2]


def _tile(array: np.ndarray, batch: int) -> np.ndarray:
    """Replicate one batch along a new leading device axis (contiguous)."""
    return np.repeat(array[None], batch, axis=0)


@dataclass
class EnsembleForwardTask:
    """Evaluate a shard of teacher models on one synthetic batch.

    Returns the *unweighted* member outputs (post-softmax distributions in
    ``"prob"`` mode, raw logits in ``"logit"`` mode) in ``device_ids``
    order; the driver applies the ensemble weights and reduces across all
    shards in ascending teacher order so the weighted mean is bit-identical
    to the serial ``ensemble_output``.
    """

    device_ids: List[int]
    states: List[ShardState]
    inputs: Union[StateRef, np.ndarray, bytes]
    mode: str = "prob"
    fuse: bool = False

    def __getstate__(self):
        payload = dict(self.__dict__)
        payload["states"] = _pack_states(payload["states"])
        if isinstance(payload["inputs"], np.ndarray):
            payload["inputs"] = pack_array_list([payload["inputs"]])
        return payload

    def run(self, context: WorkerContext) -> List[np.ndarray]:
        inputs = _single_array(self.inputs)
        fused: Dict[int, np.ndarray] = {}
        if self.fuse:
            for positions in _fusion_groups(context, self.device_ids):
                template = context.model_for(self.device_ids[positions[0]])
                states = [resolve_state(self.states[i]) for i in positions]
                module = BatchedModule(template, states, requires_grad=False).eval()
                with no_grad():
                    out = module(Tensor(_tile(inputs, len(positions))))
                    if self.mode == "prob":
                        out = out.softmax(axis=-1)
                for slot, position in enumerate(positions):
                    fused[position] = np.ascontiguousarray(out.data[slot])
        members: List[np.ndarray] = []
        for position, (device_id, state) in enumerate(zip(self.device_ids, self.states)):
            if position in fused:
                members.append(fused[position])
                continue
            with borrowed_model(context, device_id, state, train=False) as model:
                with no_grad():
                    members.append(_member_output(model, Tensor(inputs), self.mode).data)
        return members


@dataclass
class EnsembleVJPTask:
    """Backward pass of a shard of ensemble members w.r.t. the inputs.

    Given the upstream gradient of the disagreement loss with respect to
    the ensemble output, computes each teacher's contribution to the
    gradient at the synthesized inputs by replaying the serial graph ops
    (``member = softmax(model(x))``; ``term = member * weight``) and
    backpropagating ``upstream`` through them.  Parameter gradients are
    skipped (``requires_grad`` is temporarily cleared) — only the
    input-gradient path is needed, and skipping the weight-gradient work
    does not change the values that flow to the inputs.
    """

    device_ids: List[int]
    states: List[ShardState]
    weights: List[float]
    inputs: Union[StateRef, np.ndarray, bytes]
    upstream: Union[StateRef, np.ndarray, bytes]
    mode: str = "prob"
    fuse: bool = False

    def __getstate__(self):
        payload = dict(self.__dict__)
        payload["states"] = _pack_states(payload["states"])
        for field_name in ("inputs", "upstream"):
            if isinstance(payload[field_name], np.ndarray):
                payload[field_name] = pack_array_list([payload[field_name]])
        return payload

    def run(self, context: WorkerContext) -> List[np.ndarray]:
        inputs = _single_array(self.inputs)
        upstream = _single_array(self.upstream)
        fused: Dict[int, np.ndarray] = {}
        if self.fuse:
            for positions in _fusion_groups(context, self.device_ids):
                batch = len(positions)
                template = context.model_for(self.device_ids[positions[0]])
                states = [resolve_state(self.states[i]) for i in positions]
                # Stacked parameters stay grad-free — only the input-gradient
                # path is materialized, matching the per-model branch below.
                module = BatchedModule(template, states, requires_grad=False).eval()
                x = Tensor(_tile(inputs, batch), requires_grad=True)
                out = module(x)
                if self.mode == "prob":
                    out = out.softmax(axis=-1)
                weights = np.asarray([self.weights[i] for i in positions], dtype=np.float64)
                term = out * Tensor(weights.reshape((batch,) + (1,) * (out.data.ndim - 1)))
                term.backward(_tile(upstream, batch))
                for slot, position in enumerate(positions):
                    fused[position] = np.ascontiguousarray(x.grad[slot])
        grads: List[np.ndarray] = []
        for position, (device_id, state, weight) in enumerate(
                zip(self.device_ids, self.states, self.weights)):
            if position in fused:
                grads.append(fused[position])
                continue
            with borrowed_model(context, device_id, state, train=False) as model:
                parameters = model.parameters()
                for param in parameters:
                    param.requires_grad = False
                try:
                    x = Tensor(inputs, requires_grad=True)
                    term = _member_output(model, x, self.mode) * float(weight)
                    term.backward(upstream)
                finally:
                    for param in parameters:
                        param.requires_grad = True
                grads.append(x.grad)
        return grads


# --------------------------------------------------------------------------- #
# Phase-2 optimizer plumbing (shared by the serial and sharded paths)
# --------------------------------------------------------------------------- #
def make_distill_optimizer(model, lr: float, momentum: float,
                           kind: str = "sgd") -> Optimizer:
    """The back-transfer optimizer for one device model (``"sgd"``/``"adam"``)."""
    if kind == "adam":
        return Adam(model.parameters(), lr=lr)
    return SGD(model.parameters(), lr=lr, momentum=momentum)


def distill_optimizer_state(optimizer: Optimizer) -> List[np.ndarray]:
    """A back-transfer optimizer's persistent state as a flat array list.

    SGD ships its momentum buffers, Adam its ``[step, m..., v...]`` flat
    state — both fit the single ``DeviceDistillTask.velocities`` wire slot.
    """
    if isinstance(optimizer, Adam):
        return optimizer.state_arrays()
    return optimizer.velocity_state()


def load_distill_optimizer_state(optimizer: Optimizer,
                                 arrays: Sequence[np.ndarray]) -> None:
    """Install a flat state list produced by :func:`distill_optimizer_state`."""
    if isinstance(optimizer, Adam):
        optimizer.load_state_arrays(arrays)
    else:
        optimizer.load_velocity_state(arrays)


def distill_group_fused(template, states: Sequence[Dict[str, np.ndarray]],
                        velocity_lists: Sequence[Sequence[np.ndarray]],
                        inputs: Sequence[np.ndarray],
                        targets: Sequence[np.ndarray],
                        lr: float, momentum: float, optimizer_kind: str = "sgd",
                        members=None,
                        ) -> "tuple[List[Dict[str, np.ndarray]], List[List[np.ndarray]], List[List[float]]]":
    """Distill into a group of same-signature device models in one fused loop.

    Stacks the group's states through a :class:`BatchedModule`, loads the
    per-device persisted optimizer state into a :class:`BatchedSGD` /
    :class:`BatchedAdam` (stacked buffers, per-slice Adam step counters),
    and replays every shared synthetic batch once for the whole group.
    Slice ``b`` of the fused trajectory is bitwise identical to running the
    serial per-device loop on member ``b`` alone.  Returns the final state
    dicts, updated flat optimizer states, and per-device loss lists.
    """
    group = len(states)
    module = BatchedModule(template, list(states), members=members)
    module.train()
    count = len(module.parameters())
    if optimizer_kind == "adam":
        optimizer = BatchedAdam(module.parameters(), group, lr=lr)
        optimizer.load_state({
            "step": np.array([int(np.asarray(wire[0])) for wire in velocity_lists],
                             dtype=np.int64),
            "m": [np.stack([np.asarray(wire[1 + index]) for wire in velocity_lists])
                  for index in range(count)],
            "v": [np.stack([np.asarray(wire[1 + count + index]) for wire in velocity_lists])
                  for index in range(count)],
        })
    else:
        optimizer = BatchedSGD(module.parameters(), group, lr=lr, momentum=momentum)
        optimizer.load_velocity_state(
            [np.stack([np.asarray(wire[index]) for wire in velocity_lists])
             for index in range(count)])

    losses: List[List[float]] = [[] for _ in range(group)]
    for batch, target in zip(inputs, targets):
        batch = np.asarray(batch)
        target = np.asarray(target)
        # Every group member consumes the same synthetic batch; materialize
        # the stacked (B, N, ...) layout the batched ops expect.
        stacked_batch = np.ascontiguousarray(
            np.broadcast_to(batch, (group,) + batch.shape))
        stacked_target = np.ascontiguousarray(
            np.broadcast_to(target, (group,) + target.shape))
        optimizer.zero_grad(set_to_none=False)
        logits = module(Tensor(stacked_batch))
        loss_vec = batched_kl_divergence(logits, Tensor(stacked_target))
        # Summing the (B,) loss vector seeds each device's slice of the
        # backward pass with exactly the serial upstream of 1.
        loss_vec.sum().backward()
        optimizer.step()
        for member in range(group):
            losses[member].append(float(loss_vec.data[member]))

    out_states = module.state_dicts()
    if optimizer_kind == "adam":
        state = optimizer.state()
        out_velocities = [
            [np.asarray(int(state["step"][member]), dtype=np.int64)]
            + [moment[member].copy() for moment in state["m"]]
            + [moment[member].copy() for moment in state["v"]]
            for member in range(group)]
    else:
        stacked = optimizer.velocity_state()
        out_velocities = [[buffer[member].copy() for buffer in stacked]
                          for member in range(group)]
    return out_states, out_velocities, losses


@dataclass
class DeviceDistillTask:
    """Distill the global model into a shard of device models (Phase 2).

    Every device in the shard consumes the *same* per-iteration synthetic
    inputs and teacher targets (precomputed on the driver, so the
    generator/global-model RNG stream is identical to the serial path) and
    trains independently with its own persisted optimizer state (SGD
    momentum by default, Adam moments + per-device step count with
    ``optimizer="adam"``).  With ``fuse=True``, same-signature devices in
    the shard train through one :func:`distill_group_fused` stacked loop —
    bitwise identical per device to the unfused path.
    """

    device_ids: List[int]
    states: List[ShardState]
    velocities: List[Union[StateRef, bytes, List[np.ndarray]]]
    inputs: Union[StateRef, bytes, List[np.ndarray]]
    targets: Union[StateRef, bytes, List[np.ndarray]]
    lr: float
    momentum: float = 0.9
    optimizer: str = "sgd"
    fuse: bool = False

    def __getstate__(self):
        payload = dict(self.__dict__)
        payload["states"] = _pack_states(payload["states"])
        payload["velocities"] = [pack_array_list(list(velocity))
                                 if isinstance(velocity, (list, tuple)) else velocity
                                 for velocity in payload["velocities"]]
        for field_name in ("inputs", "targets"):
            if isinstance(payload[field_name], list):
                payload[field_name] = pack_array_list(payload[field_name])
        return payload

    def run(self, context: WorkerContext) -> "DeviceDistillResult":
        inputs = resolve_arrays(self.inputs)
        targets = resolve_arrays(self.targets)
        count = len(self.device_ids)
        out_states: List[Dict[str, np.ndarray]] = [None] * count
        out_velocities: List[List[np.ndarray]] = [None] * count
        out_losses: List[List[float]] = [None] * count

        fused_positions: set = set()
        if self.fuse:
            for group in _fusion_groups(context, self.device_ids):
                template = context.model_for(self.device_ids[group[0]])
                group_states, group_velocities, group_losses = distill_group_fused(
                    template,
                    [resolve_state(self.states[position]) for position in group],
                    [resolve_arrays(self.velocities[position]) for position in group],
                    inputs, targets, self.lr, self.momentum, self.optimizer,
                    members=[context.model_for(self.device_ids[position])
                             for position in group])
                for slot, position in enumerate(group):
                    out_states[position] = group_states[slot]
                    out_velocities[position] = group_velocities[slot]
                    out_losses[position] = group_losses[slot]
                    fused_positions.add(position)

        for position, (device_id, state, velocity) in enumerate(
                zip(self.device_ids, self.states, self.velocities)):
            if position in fused_positions:
                continue
            with borrowed_model(context, device_id, state, train=True) as model:
                optimizer = make_distill_optimizer(model, self.lr, self.momentum,
                                                   self.optimizer)
                load_distill_optimizer_state(optimizer, resolve_arrays(velocity))
                losses: List[float] = []
                for batch, target in zip(inputs, targets):
                    student_logits = model(Tensor(batch))
                    loss = kl_divergence_loss(student_logits, Tensor(target))
                    optimizer.zero_grad(set_to_none=False)
                    loss.backward()
                    optimizer.step()
                    losses.append(loss.item())
                out_states[position] = model.state_dict()
                out_velocities[position] = distill_optimizer_state(optimizer)
                out_losses[position] = losses
        return DeviceDistillResult(device_ids=list(self.device_ids), states=out_states,
                                   velocities=out_velocities, losses=out_losses)


@dataclass
class DeviceDistillResult:
    """Updated states, momentum buffers, and per-iteration losses of a shard."""

    device_ids: List[int]
    states: List[StateLike]
    velocities: List[Union[bytes, List[np.ndarray]]]
    losses: List[List[float]]

    def __getstate__(self):
        payload = dict(self.__dict__)
        payload["states"] = _pack_states(payload["states"])
        payload["velocities"] = [velocity if isinstance(velocity, bytes)
                                 else pack_array_list(list(velocity))
                                 for velocity in payload["velocities"]]
        return payload

    def state_dict_for(self, index: int) -> Dict[str, np.ndarray]:
        return as_state_dict(self.states[index])

    def velocity_for(self, index: int) -> List[np.ndarray]:
        return as_array_list(self.velocities[index])
