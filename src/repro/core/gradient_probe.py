"""Gradient probe reproducing Figure 2 of the paper.

Figure 2 plots, over communication rounds, the norm of the gradient of the
disagreement loss with respect to the input data for the three candidate
losses (KL divergence, raw-logit ℓ1, and the proposed SL loss).  The probe
evaluates all three losses on the *same* inputs and models, so the curves
are directly comparable: it synthesizes a batch with the current generator
(or accepts real inputs), marks it as requiring gradients, computes each
loss between the global model and the device ensemble, and records
``||∇_x L||``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from ..models.base import ClassificationModel
from ..models.generator import Generator
from ..nn.losses import DISTILLATION_LOSSES, get_distillation_loss
from ..nn.tensor import Tensor
from .distillation import ensemble_mode_for_loss, ensemble_output

__all__ = ["input_gradient_norms", "GradientNormProbe"]


def input_gradient_norms(global_model: ClassificationModel,
                         teachers: Sequence[ClassificationModel],
                         inputs: np.ndarray,
                         losses: Iterable[str] = ("kl", "l1", "sl")) -> Dict[str, float]:
    """Norm of ``∇_x L(F(x), f_ens(x))`` for each requested loss.

    Parameters
    ----------
    global_model:
        The student/global model ``F``.
    teachers:
        The on-device models forming the ensemble.
    inputs:
        Input batch as a plain array ``(N, C, H, W)``; gradients are taken
        with respect to these values.
    losses:
        Names of the disagreement losses to probe.
    """
    results: Dict[str, float] = {}
    for name in losses:
        loss_fn = get_distillation_loss(name)
        mode = ensemble_mode_for_loss(name)
        x = Tensor(np.array(inputs, copy=True), requires_grad=True)
        student_logits = global_model(x)
        teacher_out = ensemble_output(teachers, x, mode=mode)
        loss = loss_fn(student_logits, teacher_out)
        # Clear any stale parameter gradients so the probe is side-effect free.
        global_model.zero_grad()
        for teacher in teachers:
            teacher.zero_grad()
        loss.backward()
        results[name] = float(np.linalg.norm(x.grad)) if x.grad is not None else 0.0
        global_model.zero_grad()
        for teacher in teachers:
            teacher.zero_grad()
    return results


class GradientNormProbe:
    """Collect per-round input-gradient norms during a FedZKT run (Fig. 2).

    Use as the ``round_callback`` of a simulation, or call :meth:`measure`
    manually after each round.  The probe draws a fresh batch from the
    server's generator each time (matching the zero-shot setting where the
    "input data" are synthesized queries).
    """

    def __init__(self, global_model: ClassificationModel, teachers: Sequence[ClassificationModel],
                 generator: Generator, batch_size: int = 32, seed: int = 0,
                 losses: Iterable[str] = tuple(sorted(DISTILLATION_LOSSES))) -> None:
        self.global_model = global_model
        self.teachers = list(teachers)
        self.generator = generator
        self.batch_size = int(batch_size)
        self.losses = tuple(losses)
        self._rng = np.random.default_rng(seed)
        self.history: Dict[str, list] = {name: [] for name in self.losses}

    def measure(self) -> Dict[str, float]:
        """Measure the gradient norms on a freshly generated batch."""
        noise = self.generator.sample_noise(self.batch_size, self._rng)
        from ..nn import no_grad  # local import avoids a cycle at module load

        with no_grad():
            synthetic = self.generator(noise)
        norms = input_gradient_norms(self.global_model, self.teachers, synthetic.data,
                                     losses=self.losses)
        for name, value in norms.items():
            self.history[name].append(value)
        return norms

    def __call__(self, record) -> None:
        """Round-callback interface: measure and attach to the round record."""
        norms = self.measure()
        for name, value in norms.items():
            record.server_metrics[f"grad_norm_{name}"] = value

    def curves(self) -> Dict[str, list]:
        """Per-loss list of measured norms (one entry per measurement)."""
        return {name: list(values) for name, values in self.history.items()}
