"""Ensemble outputs and disagreement losses for zero-shot distillation.

The server-side distillation (Algorithm 3) measures the disagreement
between the global model ``F`` and the *ensemble* of on-device models
``f_ens``.  How the ensemble is formed depends on the loss:

* KL-divergence and SL compare post-softmax distributions, so the ensemble
  is the mean of per-device softmax outputs;
* the raw ℓ1 loss compares logits, so the ensemble is the mean of raw
  logits (Eq. 4 of the paper).

``ensemble_output`` produces the right aggregation inside the autograd
graph (gradients can flow back to the synthesized inputs), and
``disagreement_loss`` dispatches to the configured loss.
"""

from __future__ import annotations

from typing import Sequence

from ..models.base import ClassificationModel
from ..nn.losses import get_distillation_loss
from ..nn.tensor import Tensor

__all__ = ["ensemble_output", "disagreement_loss", "ensemble_mode_for_loss"]


def ensemble_mode_for_loss(loss_name: str) -> str:
    """Return ``"prob"`` or ``"logit"`` depending on what the loss compares."""
    key = loss_name.lower()
    if key in ("kl", "sl"):
        return "prob"
    if key == "l1":
        return "logit"
    raise KeyError(f"unknown distillation loss {loss_name!r}")


def ensemble_output(models: Sequence[ClassificationModel], x: Tensor, mode: str = "prob",
                    weights: Sequence[float] = None) -> Tensor:
    """Average the outputs of ``models`` on ``x``.

    Parameters
    ----------
    models:
        The on-device models (teachers).  They may have heterogeneous
        architectures; only their output dimension must agree.
    x:
        Input batch (synthetic images from the generator).
    mode:
        ``"prob"`` averages softmax outputs; ``"logit"`` averages raw logits.
    weights:
        Optional per-model weights (default: uniform ``1/K`` as in the paper).
    """
    if not models:
        raise ValueError("ensemble requires at least one model")
    if mode not in ("prob", "logit"):
        raise ValueError("mode must be 'prob' or 'logit'")
    if weights is None:
        weights = [1.0 / len(models)] * len(models)
    if len(weights) != len(models):
        raise ValueError("weights must match the number of models")

    total: Tensor = None
    for weight, model in zip(weights, models):
        logits = model(x)
        member = logits.softmax(axis=-1) if mode == "prob" else logits
        term = member * float(weight)
        total = term if total is None else total + term
    return total


def disagreement_loss(global_model: ClassificationModel, teachers: Sequence[ClassificationModel],
                      x: Tensor, loss_name: str = "sl") -> Tensor:
    """Compute ``L(F(x), f_ens(x))`` with the configured disagreement loss.

    Both the global-model branch and the teacher-ensemble branch stay in
    the autograd graph; the caller decides which parameters to step and
    zeroes the others' gradients.
    """
    loss_fn = get_distillation_loss(loss_name)
    mode = ensemble_mode_for_loss(loss_name)
    student_logits = global_model(x)
    teacher_out = ensemble_output(teachers, x, mode=mode)
    return loss_fn(student_logits, teacher_out)
