"""``repro.core`` — the FedZKT algorithm (the paper's primary contribution).

Zero-shot bidirectional knowledge transfer between a server-side global
model and heterogeneous on-device models, driven by an adversarially
trained generator and the Softmax-ℓ1 disagreement loss.
"""

from .distillation import disagreement_loss, ensemble_mode_for_loss, ensemble_output
from .fedzkt import FedZKTServer, FedZKTStrategy, build_fedzkt
from .gradient_probe import GradientNormProbe, input_gradient_norms
from .server_tasks import (
    DeviceDistillTask,
    EnsembleForwardTask,
    EnsembleVJPTask,
    partition_shards,
)
from .server_update import DistillationReport, ZeroShotDistiller

__all__ = [
    "disagreement_loss",
    "ensemble_output",
    "ensemble_mode_for_loss",
    "FedZKTServer",
    "FedZKTStrategy",
    "build_fedzkt",
    "GradientNormProbe",
    "input_gradient_norms",
    "ZeroShotDistiller",
    "DistillationReport",
    "EnsembleForwardTask",
    "EnsembleVJPTask",
    "DeviceDistillTask",
    "partition_shards",
]
