"""FedZKT server, strategy, and end-to-end builder (Algorithm 1 of the paper).

``FedZKTServer`` plugs the zero-shot distiller into the generic federated
round loop:

* ``collect`` stores the parameters uploaded by active devices;
* ``aggregate`` loads them into the server-side replicas of the on-device
  models, runs the bidirectional zero-shot knowledge transfer
  (:class:`repro.core.server_update.ZeroShotDistiller`), and prepares the
  updated per-device parameter payloads;
* ``payload_for`` returns each device's updated parameters, which the
  broadcast phase delivers to **all** devices (stragglers included).

``FedZKTStrategy`` is the registry plugin
(``repro run --algorithm fedzkt``) wrapping that server in the generic
parameter-upload phase protocol; ``build_fedzkt`` wires datasets,
partitioners, heterogeneous device models, devices, server, and strategy
into a ready-to-run :class:`repro.federated.simulation.Simulation`.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.base import ImageDataset
from ..federated.backend import ExecutionBackend
from ..federated.config import FederatedConfig
from ..federated.device import Device
from ..federated.sampling import DeviceSampler
from ..federated.server import FederatedServer
from ..federated.simulation import Simulation
from ..federated.strategy import ParameterServerStrategy
from ..models.base import ClassificationModel
from ..models.generator import Generator
from ..models.registry import build_generator, build_global_model, device_suite_for_family
from ..partition.base import Partitioner
from ..partition.iid import IIDPartitioner
from .server_update import ZeroShotDistiller

__all__ = ["FedZKTServer", "FedZKTStrategy", "build_fedzkt"]


class FedZKTServer(FederatedServer):
    """The FedZKT central server.

    Parameters
    ----------
    global_model:
        The server's knowledge-abundant global model ``F``.
    generator:
        The server-side generator ``G`` trained adversarially against the
        device ensemble.
    device_models:
        Server-side replicas of every device's model architecture, keyed by
        device id.  Uploaded parameters are loaded into these replicas; the
        distiller updates them; their state is sent back to the devices.
    config:
        The federated configuration (its ``server`` section drives the
        distiller).
    """

    name = "fedzkt"

    def __init__(self, global_model: ClassificationModel, generator: Generator,
                 device_models: Dict[int, ClassificationModel], config: FederatedConfig) -> None:
        super().__init__()
        if not device_models:
            raise ValueError("FedZKT requires at least one device model replica")
        self._global_model = global_model
        self.generator = generator
        self.device_models = dict(device_models)
        self.config = config
        self.distiller = ZeroShotDistiller(global_model, generator, config.server,
                                           seed=config.seed + 17,
                                           cohort_fusion=config.cohort_fusion)
        self._payloads: Dict[int, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    @property
    def global_model(self) -> ClassificationModel:
        return self._global_model

    def bind_backend(self, backend) -> None:
        """Route sharded server updates through the simulation's backend
        (active when ``config.server.server_shards > 1``)."""
        self.distiller.bind_backend(backend)

    def aggregate(self, round_index: int, active_devices: List[int],
                  upload_meta=None) -> None:
        # Load the freshly uploaded parameters into the server-side replicas.
        # Devices that did not participate keep their last known parameters
        # (which are the ones the server itself distilled last round).  A
        # stale upload (scheduler weight w < 1) is blended into the replica
        # rather than overwriting it: replica <- w * upload + (1 - w) * replica.
        for device_id, state in self.uploads.items():
            if device_id not in self.device_models:
                raise KeyError(f"upload from unknown device {device_id}")
            replica = self.device_models[device_id]
            weight = self.upload_weight(device_id, upload_meta)
            if weight >= 1.0:
                replica.load_state_dict(state)
            else:
                current = replica.state_dict()
                blended = {key: weight * value + (1.0 - weight) * current[key]
                           for key, value in state.items()}
                replica.load_state_dict(blended)

        report = self.distiller.server_update(self.device_models)
        self.last_metrics = {
            "generator_loss": report.get("generator_loss", 0.0),
            "global_loss": report.get("global_loss", 0.0),
            "transfer_loss": report.get("transfer_loss", 0.0),
            "input_gradient_norm": report.get("input_gradient_norm", 0.0),
            "server_parameter_updates": report.get("parameter_updates", 0),
            **self.staleness_summary(),
        }

        # Prepare the payloads: every device receives its updated parameters.
        self._payloads = {
            device_id: model.state_dict() for device_id, model in self.device_models.items()
        }

    def payload_for(self, device_id: int) -> Optional[Dict[str, np.ndarray]]:
        return self._payloads.get(device_id)

    # ------------------------------------------------------------------ #
    @property
    def server_parameter_updates(self) -> int:
        """Cumulative parameter-gradient evaluations performed by the server."""
        return self.distiller.parameter_updates_total


class FedZKTStrategy(ParameterServerStrategy):
    """Zero-shot knowledge transfer (the paper's algorithm, Algorithms 1–3).

    A :class:`~repro.federated.strategy.ParameterServerStrategy` around
    :class:`FedZKTServer`: devices upload full parameters, the server runs
    the adversarial generator / global-model distillation and distils the
    result back into per-device replicas.  The server update can shard
    through the execution backend (``ServerConfig.server_shards``), so this
    is the one built-in strategy declaring ``supports_server_shards``.
    """

    name = "fedzkt"
    supports_schedulers = ("sync", "deadline", "async")
    supports_server_shards = True

    def __init__(self, server: FedZKTServer) -> None:
        super().__init__(server, name=self.name)


def build_fedzkt(train_dataset: ImageDataset, test_dataset: ImageDataset,
                 config: FederatedConfig, family: str = "cifar",
                 partitioner: Optional[Partitioner] = None,
                 device_models: Optional[Sequence[ClassificationModel]] = None,
                 sampler: Optional[DeviceSampler] = None,
                 generator: Optional[Generator] = None,
                 global_model: Optional[ClassificationModel] = None,
                 backend: Optional[ExecutionBackend] = None) -> Simulation:
    """Construct a ready-to-run FedZKT simulation.

    Parameters
    ----------
    train_dataset / test_dataset:
        The global train pool (to be partitioned across devices) and the
        held-out test set.
    config:
        Federated configuration.
    family:
        Device-model family: ``"cifar"`` (Models A–E) or ``"small"``.
    partitioner:
        Data partitioner; defaults to IID.
    device_models:
        Optional explicit per-device models (overrides ``family``).
    backend:
        Execution backend for device-side work (default: serial).
    """
    config = config.with_strategy("fedzkt")
    num_classes = train_dataset.num_classes
    input_shape = train_dataset.input_shape
    partitioner = partitioner or IIDPartitioner(config.num_devices, seed=config.seed)
    shards = partitioner.partition(train_dataset)

    if device_models is None:
        device_models = device_suite_for_family(family, config.num_devices, input_shape,
                                                num_classes, seed=config.seed)
    device_models = list(device_models)
    if len(device_models) != config.num_devices:
        raise ValueError("need exactly one model per device")

    devices = [
        Device(device_id=index, model=model, dataset=shard,
               lr=config.device_lr, momentum=config.device_momentum,
               weight_decay=config.device_weight_decay, batch_size=config.batch_size,
               prox_mu=config.prox_mu, seed=config.seed + 1000 + index)
        for index, (model, shard) in enumerate(zip(device_models, shards))
    ]

    # Server-side replicas share the architectures but are distinct objects:
    # parameters flow only through the explicit upload/download payloads.
    replicas = {device.device_id: copy.deepcopy(device.model) for device in devices}

    global_model = global_model or build_global_model(input_shape, num_classes,
                                                      seed=config.seed + 7)
    generator = generator or build_generator(input_shape, noise_dim=config.server.noise_dim,
                                             seed=config.seed + 13)
    server = FedZKTServer(global_model, generator, replicas, config)
    return Simulation(devices, config, test_dataset, FedZKTStrategy(server),
                      sampler=sampler, backend=backend)
