"""Lightweight image transforms (normalization, augmentation).

The synthetic datasets are already produced in roughly ``[-1, 1]``; these
transforms exist so downstream users can plug real data into the same
pipeline and so the data-augmentation ablations have a substrate.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .base import ImageDataset

__all__ = ["normalize", "random_horizontal_flip", "random_translate", "apply_transforms"]


def normalize(dataset: ImageDataset, mean: float = None, std: float = None) -> ImageDataset:
    """Return a dataset with images standardized to zero mean, unit std.

    When ``mean``/``std`` are not supplied they are computed from the data,
    which is the usual per-dataset normalization recipe.
    """
    images = dataset.images
    mean = float(images.mean()) if mean is None else float(mean)
    std = float(images.std()) if std is None else float(std)
    if std == 0:
        raise ValueError("cannot normalize a constant dataset (std == 0)")
    return ImageDataset(images=(images - mean) / std, labels=dataset.labels.copy(),
                        num_classes=dataset.num_classes, name=f"{dataset.name}-norm")


def random_horizontal_flip(dataset: ImageDataset, probability: float = 0.5,
                           rng: np.random.Generator = None) -> ImageDataset:
    """Flip each image left-right with the given probability."""
    rng = rng or np.random.default_rng(0)
    images = dataset.images.copy()
    flips = rng.random(len(dataset)) < probability
    images[flips] = images[flips, :, :, ::-1]
    return ImageDataset(images=images, labels=dataset.labels.copy(),
                        num_classes=dataset.num_classes, name=f"{dataset.name}-flip")


def random_translate(dataset: ImageDataset, max_shift: int = 2,
                     rng: np.random.Generator = None) -> ImageDataset:
    """Randomly roll each image by up to ``max_shift`` pixels in each direction."""
    rng = rng or np.random.default_rng(0)
    images = dataset.images.copy()
    for index in range(len(dataset)):
        shift_h = int(rng.integers(-max_shift, max_shift + 1))
        shift_w = int(rng.integers(-max_shift, max_shift + 1))
        images[index] = np.roll(images[index], (shift_h, shift_w), axis=(1, 2))
    return ImageDataset(images=images, labels=dataset.labels.copy(),
                        num_classes=dataset.num_classes, name=f"{dataset.name}-shift")


def apply_transforms(dataset: ImageDataset,
                     transforms: Sequence[Callable[[ImageDataset], ImageDataset]]) -> ImageDataset:
    """Apply a sequence of dataset-level transforms in order."""
    for transform in transforms:
        dataset = transform(dataset)
    return dataset
