"""Mini-batch iteration over :class:`ImageDataset` objects."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..nn.tensor import Tensor
from .base import ImageDataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over a dataset in shuffled mini-batches.

    Parameters
    ----------
    dataset:
        The dataset to iterate.
    batch_size:
        Number of samples per batch (the final batch may be smaller unless
        ``drop_last`` is set).
    shuffle:
        Reshuffle the sample order at the start of every epoch.
    rng:
        Random generator controlling the shuffle (defaults to a fresh
        generator seeded from ``seed``).
    drop_last:
        Drop a trailing partial batch.
    """

    def __init__(self, dataset: ImageDataset, batch_size: int = 32, shuffle: bool = True,
                 rng: Optional[np.random.Generator] = None, seed: int = 0,
                 drop_last: bool = False) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[Tensor, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            order = self._rng.permutation(order)
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            images = Tensor(self.dataset.images[batch])
            labels = self.dataset.labels[batch]
            yield images, labels
