"""Procedural synthetic stand-ins for the paper's image datasets.

The paper evaluates on MNIST, KMNIST, FASHION-MNIST, and CIFAR-10, and uses
CIFAR-100 and SVHN as FedMD's public datasets.  Those corpora cannot be
downloaded in this offline environment, so each is replaced by a procedural
class-conditional generator with the properties the experiments rely on:

* **Learnable class structure** — every class has a smooth random-field
  prototype; samples are contrast-jittered, translated, and noised copies,
  so classifiers of different capacities reach different accuracies (as in
  Table III) but all can learn.
* **Controlled distribution similarity** — the FedMD comparison (Table I)
  hinges on the *public* dataset being close to (CIFAR-100) or far from
  (SVHN) the on-device dataset.  ``SyntheticCIFAR100`` derives its
  prototypes by perturbing the CIFAR-10 prototype bank (close);
  ``SyntheticSVHN`` uses an independent, higher-frequency process with a
  different channel mix (far).

Every generator is deterministic given its seed, so experiments are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .base import ImageDataset

__all__ = [
    "SyntheticImageConfig",
    "SyntheticImageGenerator",
    "make_prototypes",
    "DATASET_FAMILY_SEEDS",
]

#: Base seeds controlling each dataset family's prototype bank.  Two datasets
#: with the same family seed share class structure; distinct seeds give
#: distinct (distributionally distant) datasets.
DATASET_FAMILY_SEEDS: Dict[str, int] = {
    "mnist": 11,
    "kmnist": 23,
    "fashion": 37,
    "cifar10": 51,
    "cifar100": 51,   # derived from the cifar10 bank (distributionally close)
    "svhn": 97,       # independent process (distributionally far)
}


def _smooth_field(rng: np.random.Generator, channels: int, height: int, width: int,
                  smoothness: int = 3) -> np.ndarray:
    """Generate a smooth random field by upsampling low-resolution noise.

    ``smoothness`` is the downscale factor of the latent noise grid; larger
    values give smoother, lower-frequency prototypes.
    """
    low_h = max(2, height // smoothness)
    low_w = max(2, width // smoothness)
    coarse = rng.normal(size=(channels, low_h, low_w))
    # Bilinear-ish upsampling via repeated nearest + box blur.
    reps_h = int(np.ceil(height / low_h))
    reps_w = int(np.ceil(width / low_w))
    field = np.repeat(np.repeat(coarse, reps_h, axis=1), reps_w, axis=2)[:, :height, :width]
    kernel = np.ones((3, 3)) / 9.0
    blurred = np.empty_like(field)
    padded = np.pad(field, ((0, 0), (1, 1), (1, 1)), mode="edge")
    for c in range(channels):
        for i in range(height):
            for j in range(width):
                blurred[c, i, j] = np.sum(padded[c, i:i + 3, j:j + 3] * kernel)
    return blurred


def make_prototypes(num_classes: int, channels: int, height: int, width: int,
                    seed: int, smoothness: int = 3, modes_per_class: int = 1,
                    background_strength: float = 0.0) -> np.ndarray:
    """Build the per-class prototype bank for a dataset family.

    Returns an array of shape ``(num_classes, modes_per_class, channels,
    height, width)`` normalized to zero mean, unit scale per prototype.
    Every prototype mixes a shared background field (class-independent
    structure that raises inter-class similarity) with a class/mode-specific
    field.
    """
    rng = np.random.default_rng(seed)
    background = _smooth_field(rng, channels, height, width, smoothness=smoothness)
    background = background - background.mean()
    background /= np.abs(background).max() + 1e-8
    prototypes = np.empty((num_classes, modes_per_class, channels, height, width))
    for cls in range(num_classes):
        for mode in range(modes_per_class):
            field = _smooth_field(rng, channels, height, width, smoothness=smoothness)
            field = field - field.mean()
            field /= np.abs(field).max() + 1e-8
            mixed = field + background_strength * background
            mixed = mixed - mixed.mean()
            prototypes[cls, mode] = mixed / (np.abs(mixed).max() + 1e-8)
    return prototypes


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Configuration of a synthetic dataset generator.

    Attributes
    ----------
    name:
        Dataset name (also the registry key).
    num_classes, channels, height, width:
        Output geometry.
    family_seed:
        Seed of the prototype bank (shared seeds ⇒ related datasets).
    prototype_jitter:
        Std-dev of a per-class perturbation applied to the base prototypes;
        used to derive CIFAR-100 from the CIFAR-10 bank.
    smoothness:
        Spatial smoothness of the prototypes (higher = smoother).
    noise_level:
        Std-dev of per-pixel instance noise.
    max_shift:
        Maximum absolute translation (pixels) applied per sample.
    contrast_range:
        Range of the per-sample multiplicative contrast jitter.
    modes_per_class:
        Number of distinct sub-prototypes ("modes") per class.  More modes
        means more intra-class variation and a harder problem, which is what
        separates low- and high-capacity on-device models (Table III).
    background_strength:
        Amplitude of a class-independent background field mixed into every
        prototype; raises inter-class similarity and task difficulty.
    """

    name: str
    num_classes: int = 10
    channels: int = 1
    height: int = 16
    width: int = 16
    family_seed: int = 0
    prototype_jitter: float = 0.0
    smoothness: int = 3
    noise_level: float = 0.25
    max_shift: int = 2
    contrast_range: Tuple[float, float] = (0.8, 1.2)
    modes_per_class: int = 3
    background_strength: float = 0.6

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.height, self.width)


class SyntheticImageGenerator:
    """Samples labelled images from a :class:`SyntheticImageConfig`."""

    def __init__(self, config: SyntheticImageConfig) -> None:
        self.config = config
        self._prototypes = make_prototypes(
            config.num_classes, config.channels, config.height, config.width,
            seed=config.family_seed, smoothness=config.smoothness,
            modes_per_class=config.modes_per_class,
            background_strength=config.background_strength,
        )
        if config.prototype_jitter > 0:
            jitter_rng = np.random.default_rng(config.family_seed + 1000)
            self._prototypes = self._prototypes + config.prototype_jitter * jitter_rng.normal(
                size=self._prototypes.shape
            )

    @property
    def prototypes(self) -> np.ndarray:
        """The prototype bank, shape (num_classes, modes_per_class, C, H, W)."""
        return self._prototypes

    def sample(self, num_samples: int, seed: int,
               class_distribution: Optional[np.ndarray] = None) -> ImageDataset:
        """Draw ``num_samples`` labelled images.

        Parameters
        ----------
        num_samples:
            Number of images to generate.
        seed:
            Seed of the sampling RNG (independent of the prototype bank).
        class_distribution:
            Optional probability vector over classes; defaults to uniform.
        """
        config = self.config
        rng = np.random.default_rng(seed)
        if class_distribution is None:
            labels = rng.integers(0, config.num_classes, size=num_samples)
        else:
            probs = np.asarray(class_distribution, dtype=np.float64)
            if probs.shape != (config.num_classes,):
                raise ValueError("class_distribution must have one entry per class")
            probs = probs / probs.sum()
            labels = rng.choice(config.num_classes, size=num_samples, p=probs)

        images = np.empty((num_samples, config.channels, config.height, config.width))
        low, high = config.contrast_range
        for index, cls in enumerate(labels):
            contrast = rng.uniform(low, high)
            mode = int(rng.integers(0, config.modes_per_class))
            image = contrast * self._prototypes[cls, mode]
            if config.max_shift > 0:
                shift_h = rng.integers(-config.max_shift, config.max_shift + 1)
                shift_w = rng.integers(-config.max_shift, config.max_shift + 1)
                image = np.roll(image, (int(shift_h), int(shift_w)), axis=(1, 2))
            image = image + config.noise_level * rng.normal(size=image.shape)
            images[index] = image
        images = np.clip(images, -1.5, 1.5)
        return ImageDataset(images=images, labels=labels,
                            num_classes=config.num_classes, name=config.name)
