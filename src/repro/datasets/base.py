"""Dataset containers shared by the whole library.

A :class:`ImageDataset` is an in-memory array of images in NCHW layout plus
integer labels.  Federated partitioners produce index-based
:meth:`ImageDataset.subset` views, so device shards never copy pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ImageDataset", "train_test_split"]


@dataclass
class ImageDataset:
    """In-memory labelled image dataset.

    Attributes
    ----------
    images:
        Array of shape ``(N, C, H, W)`` with values roughly in ``[-1, 1]``.
    labels:
        Integer array of shape ``(N,)``.
    num_classes:
        Number of distinct classes the labels are drawn from.
    name:
        Human-readable dataset name (used in experiment reports).
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError("images must have shape (N, C, H, W)")
        if self.labels.ndim != 1 or self.labels.shape[0] != self.images.shape[0]:
            raise ValueError("labels must be a 1-D array aligned with images")
        if self.labels.size and (self.labels.min() < 0 or self.labels.max() >= self.num_classes):
            raise ValueError("labels out of range for num_classes")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """``(channels, height, width)`` of a single image."""
        return tuple(int(s) for s in self.images.shape[1:])

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "ImageDataset":
        """Return a new dataset restricted to ``indices`` (copy-on-index)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ImageDataset(
            images=self.images[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=name or f"{self.name}[subset:{len(indices)}]",
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples per class (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def classes_present(self) -> np.ndarray:
        """Sorted array of class indices that actually occur."""
        return np.unique(self.labels)

    def iter_class_indices(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(class_index, sample_indices)`` for every class with samples."""
        for cls in range(self.num_classes):
            idx = np.where(self.labels == cls)[0]
            if idx.size:
                yield cls, idx

    def describe(self) -> str:
        """One-line summary used by the experiment harness."""
        return (
            f"{self.name}: {len(self)} samples, shape {self.input_shape}, "
            f"{self.num_classes} classes"
        )


def train_test_split(dataset: ImageDataset, test_fraction: float,
                     rng: np.random.Generator) -> Tuple[ImageDataset, ImageDataset]:
    """Split a dataset into train/test parts with class-stratified sampling."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    test_indices: list[int] = []
    for _, indices in dataset.iter_class_indices():
        permuted = rng.permutation(indices)
        take = max(1, int(round(len(indices) * test_fraction)))
        test_indices.extend(permuted[:take].tolist())
    test_mask = np.zeros(len(dataset), dtype=bool)
    test_mask[np.asarray(test_indices, dtype=np.int64)] = True
    train_idx = np.where(~test_mask)[0]
    test_idx = np.where(test_mask)[0]
    return (
        dataset.subset(train_idx, name=f"{dataset.name}-train"),
        dataset.subset(test_idx, name=f"{dataset.name}-test"),
    )
