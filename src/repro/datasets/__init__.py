"""``repro.datasets`` — synthetic stand-ins for the paper's image corpora.

See :mod:`repro.datasets.synthetic` for the substitution rationale
(offline environment → procedural class-conditional generators with
controlled inter-dataset distribution distances).
"""

from .base import ImageDataset, train_test_split
from .dataloader import DataLoader
from .registry import (
    PUBLIC_DATASET_PAIRS,
    DatasetBundle,
    available_datasets,
    dataset_config,
    dataset_family,
    load_dataset,
    public_dataset_for,
)
from .synthetic import SyntheticImageConfig, SyntheticImageGenerator, make_prototypes

__all__ = [
    "ImageDataset",
    "train_test_split",
    "DataLoader",
    "DatasetBundle",
    "available_datasets",
    "dataset_config",
    "dataset_family",
    "load_dataset",
    "public_dataset_for",
    "PUBLIC_DATASET_PAIRS",
    "SyntheticImageConfig",
    "SyntheticImageGenerator",
    "make_prototypes",
]
