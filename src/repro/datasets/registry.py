"""Named synthetic datasets mirroring the paper's experimental corpus.

``load_dataset(name)`` returns train and test :class:`ImageDataset` splits
for any of: ``mnist``, ``kmnist``, ``fashion``, ``cifar10``, ``cifar100``,
``svhn`` (all synthetic stand-ins; see :mod:`repro.datasets.synthetic` for
the substitution rationale).  ``public_dataset_for`` encodes the FedMD
public-dataset pairings used in Table I.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from .base import ImageDataset
from .synthetic import DATASET_FAMILY_SEEDS, SyntheticImageConfig, SyntheticImageGenerator

__all__ = [
    "DatasetBundle",
    "available_datasets",
    "dataset_config",
    "load_dataset",
    "public_dataset_for",
    "dataset_family",
    "PUBLIC_DATASET_PAIRS",
]


def _small_config(name: str, image_size: int) -> SyntheticImageConfig:
    return SyntheticImageConfig(
        name=name,
        num_classes=10,
        channels=1,
        height=image_size,
        width=image_size,
        family_seed=DATASET_FAMILY_SEEDS[name],
        smoothness=3,
        noise_level=0.35,
        max_shift=2,
        contrast_range=(0.7, 1.3),
        modes_per_class=2,
        background_strength=0.4,
    )


def _cifar_config(name: str, image_size: int) -> SyntheticImageConfig:
    jitter = 0.15 if name == "cifar100" else 0.0
    num_classes = 100 if name == "cifar100" else 10
    return SyntheticImageConfig(
        name=name,
        num_classes=num_classes,
        channels=3,
        height=image_size,
        width=image_size,
        family_seed=DATASET_FAMILY_SEEDS[name],
        prototype_jitter=jitter,
        smoothness=3,
        noise_level=0.45,
        max_shift=2,
        contrast_range=(0.7, 1.3),
        modes_per_class=3,
        background_strength=0.5,
    )


def _svhn_config(name: str, image_size: int) -> SyntheticImageConfig:
    # Independent family seed, sharper (less smooth) textures, stronger noise:
    # deliberately far from the CIFAR-10 distribution.
    return SyntheticImageConfig(
        name=name,
        num_classes=10,
        channels=3,
        height=image_size,
        width=image_size,
        family_seed=DATASET_FAMILY_SEEDS["svhn"],
        smoothness=1,
        noise_level=0.6,
        max_shift=3,
        contrast_range=(0.5, 1.5),
        modes_per_class=2,
        background_strength=0.3,
    )


_CONFIG_BUILDERS = {
    "mnist": _small_config,
    "kmnist": _small_config,
    "fashion": _small_config,
    "cifar10": _cifar_config,
    "cifar100": _cifar_config,
    "svhn": _svhn_config,
}

#: FedMD public-dataset pairings used in the paper (Section IV-A5): the
#: on-device dataset maps to the public dataset(s) the server may use.
PUBLIC_DATASET_PAIRS: Dict[str, List[str]] = {
    "mnist": ["fashion"],
    "fashion": ["mnist"],
    "kmnist": ["fashion"],
    "cifar10": ["cifar100", "svhn"],
}


class DatasetBundle(NamedTuple):
    """Pair of (train, test) datasets returned by :func:`load_dataset`."""

    train: ImageDataset
    test: ImageDataset


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_CONFIG_BUILDERS)


def dataset_family(name: str) -> str:
    """Return ``'small'`` for the MNIST-like datasets and ``'cifar'`` otherwise."""
    key = name.lower()
    if key in ("mnist", "kmnist", "fashion"):
        return "small"
    if key in ("cifar10", "cifar100", "svhn"):
        return "cifar"
    raise KeyError(f"unknown dataset {name!r}")


def dataset_config(name: str, image_size: int = 16) -> SyntheticImageConfig:
    """Return the synthetic-generator configuration for a dataset name."""
    key = name.lower()
    if key not in _CONFIG_BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return _CONFIG_BUILDERS[key](key, image_size)


def load_dataset(name: str, train_size: int = 2000, test_size: int = 500,
                 image_size: int = 16, seed: int = 0) -> DatasetBundle:
    """Generate train/test splits of a named synthetic dataset.

    The train and test splits use different sampling seeds but the same
    class-prototype bank, so they are i.i.d. draws from the same synthetic
    distribution (the analogue of the official train/test splits).
    """
    config = dataset_config(name, image_size=image_size)
    generator = SyntheticImageGenerator(config)
    train = generator.sample(train_size, seed=seed * 7919 + 1)
    test = generator.sample(test_size, seed=seed * 7919 + 2)
    train.name = f"{config.name}-train"
    test.name = f"{config.name}-test"
    return DatasetBundle(train, test)


def public_dataset_for(on_device: str, choice: Optional[str] = None,
                       size: int = 1000, image_size: int = 16, seed: int = 123) -> ImageDataset:
    """Return the (unlabelled-use) public dataset FedMD pairs with ``on_device``.

    Parameters
    ----------
    on_device:
        Name of the private on-device dataset.
    choice:
        Explicit public dataset name; defaults to the paper's primary pairing
        (the first entry of :data:`PUBLIC_DATASET_PAIRS`).
    """
    key = on_device.lower()
    if key not in PUBLIC_DATASET_PAIRS:
        raise KeyError(f"no public-dataset pairing defined for {on_device!r}")
    public_name = (choice or PUBLIC_DATASET_PAIRS[key][0]).lower()
    config = dataset_config(public_name, image_size=image_size)
    generator = SyntheticImageGenerator(config)
    public = generator.sample(size, seed=seed)
    public.name = f"{public_name}-public"
    return public
