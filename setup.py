"""Legacy setup shim.

All package metadata lives in pyproject.toml; this file only exists so
that editable installs keep working on older toolchains without the
``wheel`` package (``pip install -e . --no-use-pep517``) where the PEP 660
build_editable hook is unavailable.
"""

from setuptools import setup

setup()
