"""Non-IID federated learning: Dirichlet label skew + the ℓ2 proximal regularizer.

Reproduces the paper's non-IID setting (Section IV-A4, Fig. 4 e–h and
Table IV) at example scale: devices receive label-skewed shards drawn from a
Dirichlet distribution, and the on-device update adds the ℓ2 proximal term
of Eq. 9.  The example compares FedZKT with and without the regularizer and
against the FedMD baseline.

Run with:  python examples/noniid_dirichlet.py
"""

from repro.baselines import build_fedmd
from repro.core import build_fedzkt
from repro.datasets import load_dataset, public_dataset_for
from repro.federated import FederatedConfig, ServerConfig
from repro.partition import DirichletPartitioner, partition_summary


def make_config(prox_mu: float) -> FederatedConfig:
    return FederatedConfig(
        num_devices=5,
        rounds=2,
        local_epochs=3,
        batch_size=32,
        device_lr=0.05,
        prox_mu=prox_mu,
        server=ServerConfig(distillation_iterations=30, batch_size=32,
                            global_lr=0.05, device_distill_lr=0.02),
    )


def main() -> None:
    beta = 0.3
    train, test = load_dataset("mnist", train_size=1000, test_size=250, seed=0)
    partitioner = DirichletPartitioner(5, beta=beta, seed=0)

    print(f"Dirichlet(beta={beta}) label skew across 5 devices:")
    print(partition_summary(partitioner.partition(train)))

    results = {}
    for label, prox_mu in [("FedZKT (no regularization)", 0.0),
                           ("FedZKT (l2 regularization)", 0.05)]:
        simulation = build_fedzkt(train, test, make_config(prox_mu), family="small",
                                  partitioner=DirichletPartitioner(5, beta=beta, seed=0))
        history = simulation.run(verbose=False)
        results[label] = history.best_global_accuracy()
        print(f"{label}: best global accuracy {results[label]:.3f}")

    public = public_dataset_for("mnist", size=400)
    fedmd = build_fedmd(train, test, public, make_config(0.0), family="small",
                        partitioner=DirichletPartitioner(5, beta=beta, seed=0))
    fedmd_history = fedmd.run()
    results["FedMD"] = fedmd_history.best_mean_device_accuracy()
    print(f"FedMD (public={public.name}): best mean device accuracy {results['FedMD']:.3f}")

    print("\nSummary (higher is better):")
    for label, value in results.items():
        print(f"  {label:35s} {value:.3f}")


if __name__ == "__main__":
    main()
