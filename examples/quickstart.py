"""Quickstart: run FedZKT with five heterogeneous devices on a synthetic dataset.

This is the smallest end-to-end use of the public API:

1. load a synthetic dataset (a stand-in for MNIST);
2. build a FedZKT simulation — heterogeneous on-device models, a server-side
   global model and generator, IID data partitioning;
3. run a few communication rounds and print the learning curve.

Since the Strategy redesign, every algorithm runs through the same generic
``Simulation`` engine with a pluggable strategy: swap ``build_fedzkt`` for
``build_fedavg`` / ``build_fedmd`` / ``build_standalone`` (or any strategy
registered via ``repro.federated.register_strategy``) and everything else
here stays the same.  The equivalent CLI one-liner is::

    repro run mnist --algorithm fedzkt --rounds 3

Run with:  python examples/quickstart.py [--rounds N]
"""

import argparse

from repro.core import build_fedzkt
from repro.datasets import load_dataset
from repro.federated import FederatedConfig, ServerConfig
from repro.utils import Timer


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="FedZKT quickstart")
    parser.add_argument("--rounds", type=int, default=3,
                        help="communication rounds (default: 3)")
    args = parser.parse_args(argv)

    # A small synthetic MNIST stand-in (1x16x16 images, 10 classes).
    train, test = load_dataset("mnist", train_size=1200, test_size=300, seed=0)
    print(f"train: {train.describe()}")
    print(f"test:  {test.describe()}")

    # Five devices, server-side zero-shot distillation.
    config = FederatedConfig(
        num_devices=5,
        rounds=args.rounds,
        local_epochs=3,
        batch_size=32,
        device_lr=0.05,
        server=ServerConfig(distillation_iterations=40, batch_size=32,
                            global_lr=0.05, device_distill_lr=0.02),
    )

    simulation = build_fedzkt(train, test, config, family="small")
    print(f"\nstrategy: {simulation.strategy.name} "
          f"(schedulers: {', '.join(simulation.strategy.supports_schedulers)})")
    print("On-device models (independently designed, heterogeneous):")
    for device in simulation.devices:
        print(f"  {device.describe()}")
    print(f"server global model: {simulation.server.global_model.describe()}")

    with Timer("training") as timer:
        history = simulation.run(verbose=True)
    print(f"\nfinished in {timer.elapsed:.1f}s")

    print("\nGlobal-model accuracy per round:",
          [f"{acc:.3f}" for acc in history.global_accuracy_curve()])
    print("Mean on-device accuracy per round:",
          [f"{acc:.3f}" for acc in history.mean_device_accuracy_curve()])


if __name__ == "__main__":
    main()
