"""Quickstart: run FedZKT with five heterogeneous devices on a synthetic dataset.

This is the smallest end-to-end use of the public API:

1. load a synthetic dataset (a stand-in for MNIST);
2. build a FedZKT simulation — heterogeneous on-device models, a server-side
   global model and generator, IID data partitioning;
3. run a few communication rounds and print the learning curve.

Run with:  python examples/quickstart.py
"""

from repro.core import build_fedzkt
from repro.datasets import load_dataset
from repro.federated import FederatedConfig, ServerConfig
from repro.utils import Timer


def main() -> None:
    # A small synthetic MNIST stand-in (1x16x16 images, 10 classes).
    train, test = load_dataset("mnist", train_size=1200, test_size=300, seed=0)
    print(f"train: {train.describe()}")
    print(f"test:  {test.describe()}")

    # Five devices, three communication rounds, server-side zero-shot distillation.
    config = FederatedConfig(
        num_devices=5,
        rounds=3,
        local_epochs=3,
        batch_size=32,
        device_lr=0.05,
        server=ServerConfig(distillation_iterations=40, batch_size=32,
                            global_lr=0.05, device_distill_lr=0.02),
    )

    simulation = build_fedzkt(train, test, config, family="small")
    print("\nOn-device models (independently designed, heterogeneous):")
    for device in simulation.devices:
        print(f"  {device.describe()}")
    print(f"server global model: {simulation.server.global_model.describe()}")

    with Timer("training") as timer:
        history = simulation.run(verbose=True)
    print(f"\nfinished in {timer.elapsed:.1f}s")

    print("\nGlobal-model accuracy per round:",
          [f"{acc:.3f}" for acc in history.global_accuracy_curve()])
    print("Mean on-device accuracy per round:",
          [f"{acc:.3f}" for acc in history.mean_device_accuracy_curve()])


if __name__ == "__main__":
    main()
