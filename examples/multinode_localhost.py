"""Multi-node FedZKT on localhost: one driver, two worker daemons, tcp://.

The ``tcp://`` backend splits a federated run across worker processes that
talk to the driver over real sockets — the same path that spans machines.
Two ways to wire it up:

**Spawned workers (this script).**  ``tcp://:0?workers=2`` binds the blob
server to an OS-assigned port and spawns two localhost worker daemons; the
run is otherwise identical to ``--backend serial`` (bit-identical history,
by design).  The CLI equivalent::

    repro run mnist --backend "tcp://:0?workers=2" --transport-stats

**External workers (multiple terminals / machines).**  Pick a fixed port,
point workers at it, then start the driver with no spawned workers::

    # terminal 1 + 2 (or other machines that can reach the driver):
    repro worker --connect 127.0.0.1:7000

    # terminal 3:
    repro run mnist --backend tcp://:7000

Workers reconnect with backoff, so starting them before or after the
driver both work; a worker killed mid-round has its leased tasks
re-dispatched to the survivors.

Run with:  python examples/multinode_localhost.py [--rounds N] [--workers N]
"""

import argparse

from repro.core import build_fedzkt
from repro.datasets import load_dataset
from repro.federated import FederatedConfig, ServerConfig, make_backend
from repro.utils import Timer


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="FedZKT across localhost worker daemons")
    parser.add_argument("--rounds", type=int, default=2,
                        help="communication rounds (default: 2)")
    parser.add_argument("--workers", type=int, default=2,
                        help="spawned localhost worker daemons (default: 2)")
    args = parser.parse_args(argv)

    train, test = load_dataset("mnist", train_size=600, test_size=200, seed=0)
    config = FederatedConfig(
        num_devices=4,
        rounds=args.rounds,
        local_epochs=1,
        batch_size=32,
        device_lr=0.05,
        server=ServerConfig(distillation_iterations=10, batch_size=16,
                            global_lr=0.05, device_distill_lr=0.02),
    )

    spec = f"tcp://:0?workers={args.workers}"
    print(f"backend: {spec} (blob server on an OS-assigned port, "
          f"{args.workers} spawned worker daemons)")
    backend = make_backend(spec)
    with backend:
        with build_fedzkt(train, test, config, family="small",
                          backend=backend) as simulation:
            with Timer("training") as timer:
                history = simulation.run(verbose=True)
        stats = backend.transport_stats()

    print(f"\nfinished in {timer.elapsed:.1f}s across "
          f"{stats['workers_connected']} workers")
    print("Global-model accuracy per round:",
          [f"{acc:.3f}" for acc in history.global_accuracy_curve()])
    print(f"state published {stats['published_bytes']:,} B "
          f"(delta-encoded), fetched {stats['fetched_bytes']:,} B; "
          f"context {stats['context_published_bytes']:,} B published, "
          f"{stats['context_bytes']:,} B fetched; "
          f"tasks {stats['task_bytes']:,} B")


if __name__ == "__main__":
    main()
