"""Loss-function ablation: SL vs KL vs raw-logit ℓ1 for zero-shot distillation.

Reproduces the spirit of Table II and Figure 2: run FedZKT with each of the
three candidate disagreement losses under non-IID data and also probe the
norm of the loss gradients with respect to the synthesized inputs (the
quantity behind the paper's two hypotheses).

Run with:  python examples/loss_ablation.py
"""

from repro.core import build_fedzkt, input_gradient_norms
from repro.datasets import load_dataset
from repro.federated import FederatedConfig, ServerConfig
from repro.partition import QuantityLabelSkewPartitioner


def make_config(loss_name: str) -> FederatedConfig:
    return FederatedConfig(
        num_devices=5,
        rounds=2,
        local_epochs=3,
        batch_size=32,
        device_lr=0.05,
        prox_mu=0.05,
        server=ServerConfig(distillation_iterations=30, batch_size=32, global_lr=0.05,
                            device_distill_lr=0.02, distillation_loss=loss_name),
    )


def main() -> None:
    train, test = load_dataset("mnist", train_size=1000, test_size=250, seed=0)

    accuracies = {}
    last_simulation = None
    for loss_name in ("kl", "l1", "sl"):
        partitioner = QuantityLabelSkewPartitioner(5, classes_per_device=5, seed=0)
        simulation = build_fedzkt(train, test, make_config(loss_name), family="small",
                                  partitioner=partitioner)
        history = simulation.run()
        accuracies[loss_name] = history.best_global_accuracy()
        last_simulation = simulation
        print(f"{loss_name.upper():3s} loss: best global accuracy {accuracies[loss_name]:.3f}")

    print("\nTable II shape: SL >= KL and SL >> l1 on the paper's CIFAR-10 runs.")

    # Figure 2-style probe: gradient norms w.r.t. the generator's samples.
    server = last_simulation.server
    samples = server.generator.generate(32, rng=__import__("numpy").random.default_rng(0))
    norms = input_gradient_norms(server.global_model, list(server.device_models.values()),
                                 samples.data)
    print("\nInput-gradient norms on current models (Fig. 2 ordering: kl <= sl <= l1):")
    for name, value in sorted(norms.items()):
        print(f"  {name}: {value:.4g}")


if __name__ == "__main__":
    main()
