"""Writing a new algorithm as a Strategy plugin (the ISSUE 4 API).

Adding an algorithm no longer means cloning a ~150-line simulation
subclass: implement a :class:`~repro.federated.Strategy` (or subclass
``ParameterServerStrategy`` if devices upload parameters), declare its
capabilities, register it, and the generic ``Simulation`` engine — with
every scheduler and execution backend — drives it.

This example builds **median-FedAvg**: parameter averaging with the
coordinate-wise *median* instead of the weighted mean (a classic
robust-aggregation variant — a single corrupted upload cannot drag the
global model arbitrarily far).  Everything except the server update is
inherited:

* the server overrides one method (``aggregate``);
* the strategy is ~10 lines of capability declarations;
* ``register_strategy`` makes it enumerable next to the built-ins
  (``repro list`` shows it; to make ``repro run --algorithm fedmedian``
  work too, attach a dataset-level entry point with
  ``repro.experiments.runner.register_algorithm_runner``).

Run with:  python examples/custom_strategy.py
"""

import copy

import numpy as np

from repro.baselines import FedAvgServer
from repro.datasets import load_dataset
from repro.federated import (
    Device,
    FederatedConfig,
    ParameterServerStrategy,
    Simulation,
    register_strategy,
    strategy_names,
)
from repro.models import ModelSpec
from repro.models.registry import build_model
from repro.partition import IIDPartitioner


class MedianServer(FedAvgServer):
    """FedAvg server with coordinate-wise-median aggregation."""

    name = "fedmedian"

    def aggregate(self, round_index, active_devices, upload_meta=None):
        if not self.uploads:
            self._payload = self.global_model.state_dict()
            self.last_metrics = {"aggregated_devices": 0.0}
            return
        aggregated = {
            key: np.median(np.stack([state[key] for state in self.uploads.values()],
                                    axis=0), axis=0)
            for key in next(iter(self.uploads.values()))
        }
        self.global_model.load_state_dict(aggregated)
        self._payload = aggregated
        self.last_metrics = {"aggregated_devices": float(len(self.uploads))}


@register_strategy
class MedianFedAvgStrategy(ParameterServerStrategy):
    """Robust parameter averaging: coordinate-wise median of the uploads."""

    name = "fedmedian"
    supports_schedulers = ("sync",)  # median ignores staleness weights
    supports_server_shards = False

    def __init__(self, server: MedianServer) -> None:
        super().__init__(server, name=self.name)


def main() -> None:
    print(f"registered strategies: {', '.join(strategy_names())}\n")

    train, test = load_dataset("mnist", train_size=800, test_size=200, seed=0)
    config = FederatedConfig(num_devices=4, rounds=3, local_epochs=2, batch_size=32,
                             device_lr=0.05, seed=0).with_strategy("fedmedian")

    spec = ModelSpec("cnn", {"channels": (8, 16)})
    reference = build_model(spec, train.input_shape, train.num_classes, seed=0)
    shards = IIDPartitioner(config.num_devices, seed=0).partition(train)
    devices = [Device(device_id=i, model=copy.deepcopy(reference), dataset=shard,
                      lr=config.device_lr, batch_size=config.batch_size, seed=1000 + i)
               for i, shard in enumerate(shards)]

    server = MedianServer(copy.deepcopy(reference))
    with Simulation(devices, config, test, MedianFedAvgStrategy(server)) as simulation:
        history = simulation.run(verbose=True)

    print("\nGlobal-model accuracy per round:",
          [f"{acc:.3f}" for acc in history.global_accuracy_curve()])


if __name__ == "__main__":
    main()
