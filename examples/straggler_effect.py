"""Straggler study: vary the portion of devices that participate each round.

Reproduces Figure 6 of the paper at example scale.  In every communication
round only a fraction ``p`` of devices performs local training; the rest are
stragglers (poor connectivity / low battery).  All devices still receive the
server-distilled parameters, which is why FedZKT degrades gracefully.

Run with:  python examples/straggler_effect.py
"""

from repro.core import build_fedzkt
from repro.datasets import load_dataset
from repro.federated import FederatedConfig, ServerConfig


def main() -> None:
    train, test = load_dataset("mnist", train_size=1000, test_size=250, seed=0)

    portions = (0.2, 0.6, 1.0)
    curves = {}
    for portion in portions:
        config = FederatedConfig(
            num_devices=5,
            rounds=3,
            local_epochs=2,
            batch_size=32,
            device_lr=0.05,
            participation_fraction=portion,
            server=ServerConfig(distillation_iterations=25, batch_size=32,
                                global_lr=0.05, device_distill_lr=0.02),
        )
        simulation = build_fedzkt(train, test, config, family="small")
        history = simulation.run()
        curves[portion] = history.mean_device_accuracy_curve()
        print(f"p = {portion:.1f}: mean on-device accuracy per round "
              f"{[f'{a:.3f}' for a in curves[portion]]}")

    print("\nExpected shape (paper Fig. 6): curves for p >= 0.4 are close together;"
          " only p = 0.2 lags noticeably.")


if __name__ == "__main__":
    main()
