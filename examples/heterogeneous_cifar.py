"""Heterogeneous on-device models on the CIFAR-10 stand-in (paper Fig. 5 / Table V).

Builds the paper's Model A–E device suite — two ShuffleNetV2 variants, two
MobileNetV2 variants, and a LeNet — gives each device an IID shard of the
synthetic CIFAR-10, runs FedZKT, and reports per-device accuracy next to
each device's parameter budget.  This is the scenario the paper motivates:
wearables and smartphones with very different memory budgets collaborating
without sharing an architecture.

Run with:  python examples/heterogeneous_cifar.py
"""

from repro.core import build_fedzkt
from repro.datasets import load_dataset
from repro.federated import FederatedConfig, ServerConfig, model_size_bytes
from repro.models import device_specs_for_family
from repro.utils import Timer


def main() -> None:
    train, test = load_dataset("cifar10", train_size=800, test_size=200, seed=0)

    config = FederatedConfig(
        num_devices=5,
        rounds=2,
        local_epochs=2,
        batch_size=32,
        device_lr=0.05,
        server=ServerConfig(distillation_iterations=20, batch_size=32,
                            global_lr=0.05, device_distill_lr=0.02),
    )
    simulation = build_fedzkt(train, test, config, family="cifar")

    specs = device_specs_for_family("cifar", config.num_devices)
    print("Device suite (Table V of the paper):")
    for device, spec in zip(simulation.devices, specs):
        budget_kb = model_size_bytes(device.model) / 1024
        print(f"  device {device.device_id}: {spec.describe():40s} "
              f"{device.model.num_parameters():>7d} params (~{budget_kb:.0f} KiB)")

    with Timer() as timer:
        history = simulation.run(verbose=True)

    print(f"\nfinished in {timer.elapsed:.1f}s")
    print("\nFinal per-device accuracy (heterogeneous architectures, shared knowledge):")
    for device_id, accuracy in sorted(history.final_device_accuracies().items()):
        print(f"  device {device_id} [{specs[device_id].describe()}]: {accuracy:.3f}")
    print(f"global model accuracy: {history.final_global_accuracy():.3f}")


if __name__ == "__main__":
    main()
